"""Event queue and simulator kernel.

Time is measured in *cycles* of the accelerator clock, stored as floats
so that sub-cycle quantities (e.g. DRAM latencies converted from
nanoseconds) do not accumulate rounding error. Events at the same
timestamp execute in scheduling order, which keeps runs deterministic.
"""

import heapq
import itertools
from typing import Callable, Optional


class Event:
    """A scheduled callback.

    Events compare by (time, sequence number) so that simultaneous
    events fire in the order they were scheduled. Cancelled events stay
    in the heap but are skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """A deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.at(10, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [10.0]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq = itertools.count()
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_processed

    def at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time``.

        Scheduling in the past raises ``ValueError``: components must
        never rewind the clock.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        event = Event(float(time), next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.at(self.now + delay, callback)

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run events until the queue drains, ``until``, or ``max_events``.

        ``until`` is inclusive: an event scheduled exactly at ``until``
        fires. When the run stops on ``until`` the clock is advanced to
        ``until`` even if no event lands there, so window-based
        statistics integrate to the right horizon.
        """
        processed = 0
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                break
            if max_events is not None and processed >= max_events:
                return
            heapq.heappop(self._heap)
            self.now = event.time
            event.callback()
            self._events_processed += 1
            processed += 1
        if until is not None and self.now < until:
            self.now = float(until)

    def every(
        self, interval: float, callback: Callable[[], None]
    ) -> "RecurringEvent":
        """Schedule ``callback`` every ``interval`` cycles until cancelled.

        The first firing is one interval from now. Recurring events are
        the watchdog primitive of the fault-tolerance layer (the SLO
        guard samples backlog on one); they reschedule themselves, so a
        simulation holding a live recurring event never drains — cancel
        it when the observed experiment ends.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        return RecurringEvent(self, float(interval), callback)

    def peek(self) -> Optional[float]:
        """Timestamp of the next live event, or None when drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class RecurringEvent:
    """A self-rescheduling periodic callback (see :meth:`Simulator.every`).

    ``cancel`` stops future firings; a firing in flight at cancel time
    is skipped via the underlying event's cancellation.
    """

    __slots__ = ("sim", "interval", "callback", "cancelled", "_event")

    def __init__(
        self, sim: Simulator, interval: float, callback: Callable[[], None]
    ):
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.cancelled = False
        self._event = sim.after(interval, self._fire)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.callback()
        self._event = self.sim.after(self.interval, self._fire)

    def cancel(self) -> None:
        self.cancelled = True
        self._event.cancel()
