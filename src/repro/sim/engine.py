"""Event queue and simulator kernel.

Time is measured in *cycles* of the accelerator clock, stored as floats
so that sub-cycle quantities (e.g. DRAM latencies converted from
nanoseconds) do not accumulate rounding error. Events at the same
timestamp execute in scheduling order, which keeps runs deterministic.

Hot-path layout: the heap holds ``(time, seq, event, callback)`` tuples,
not :class:`Event` objects — tuple keys compare in C during heap sifts,
where an object heap pays a Python ``__lt__`` call per comparison. Two
scheduling lanes share that heap:

* the **keyed lane** (:meth:`Simulator.at` / :meth:`Simulator.after`)
  allocates an :class:`Event` handle that supports cancellation and
  snapshotting, exactly as before;
* the **anonymous lane** (:meth:`Simulator.at_call` /
  :meth:`Simulator.after_call`) pushes a bare ``(time, seq, None,
  callback)`` entry — no handle, no cancellation, no detach
  bookkeeping. Fire-and-forget traffic (MMU issue completions, serial
  resource completions, zero-delay hops) dominates dense workloads, and
  skipping the allocation is most of the drain fast path's win.

Two drain loops execute the same contract over that heap:
``loop="batched"`` (the default) pops events in instrumentation-free
batches, and ``loop="reference"`` keeps the historical one-event-at-a-
time loop as the bit-exactness oracle the equivalence suite replays
against (see ``tests/sim/test_batch_drain.py``).
"""

import heapq
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Heap entry: (time, seq, Event-or-None, callback). ``seq`` is unique,
#: so heap comparisons never reach the third element.
_Entry = Tuple[float, int, Optional["Event"], Callable[[], None]]

#: Events drained between re-reads of loop-varying state
#: (``self._profiler``). A profiler attached or detached from inside a
#: callback takes effect at the next batch boundary — at most one batch
#: late — under *both* loops, so the two stay trace-equivalent.
_BATCH = 64

#: Stand-in budget when ``max_events`` is None (larger than any heap).
_NO_BUDGET = 2 ** 62


class SnapshotError(RuntimeError):
    """Raised when live state cannot be captured (or restored) faithfully.

    Defined here — the bottom of the import graph — and re-exported as
    ``repro.state.SnapshotError``, which is the name everything above
    the simulator uses. It is a *refusal*, not an internal failure: the
    caller asked for a snapshot at a point where one would lie (e.g. an
    unkeyed in-flight event whose closure cannot be serialized).
    Snapshot at a quiescence point instead.
    """


#: Values :meth:`Simulator.run` returns to say why it stopped.
STOP_DRAINED = "drained"
STOP_UNTIL = "until"
STOP_MAX_EVENTS = "max_events"

#: Drain-loop implementations :meth:`Simulator.run` accepts.
LOOP_BATCHED = "batched"
LOOP_REFERENCE = "reference"
_LOOPS = (LOOP_BATCHED, LOOP_REFERENCE)


class Event:
    """A scheduled callback handle (the keyed lane).

    Events compare by (time, sequence number) so that simultaneous
    events fire in the order they were scheduled. Cancelled events are
    skipped when popped; the simulator additionally compacts the heap
    when cancelled entries outnumber live ones, so cancel-heavy
    workloads (watchdogs, speculative timeouts) keep O(live) memory
    instead of leaking every tombstone until drain.

    ``key`` names the *callback*, not the event: a keyed event can be
    serialized by :meth:`Simulator.to_state` and re-bound to the same
    callback on restore. Unkeyed events are fine to schedule but make
    the simulator refuse to snapshot while they are live.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "key", "_sim",
                 "_recurring")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        key: Optional[str] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.key = key
        self._sim: Optional["Simulator"] = None  # set while in the heap
        self._recurring: Optional["RecurringEvent"] = None

    def cancel(self) -> None:
        """Prevent this event from firing."""
        if self.cancelled:
            return
        self.cancelled = True
        # Only a cancel of an event still sitting in a heap creates a
        # tombstone; events already popped (or compacted out) have been
        # detached and must not skew the tombstone count.
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """A deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.at(10, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [10.0]
    """

    #: Below this heap size compaction is pointless (the scan costs more
    #: than the tombstones).
    _COMPACT_MIN_SIZE = 64

    #: Drain loop :meth:`run` uses when no ``loop`` argument is given.
    #: Instances may override (the bench harness and the equivalence
    #: suite pin one explicitly per run).
    default_loop = LOOP_BATCHED

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[_Entry] = []
        # An explicit counter (not itertools.count) so a snapshot can
        # record and a restore can replay the exact sequence cursor —
        # the (time, seq) order of future events is part of the
        # bit-exact resume contract.
        self._seq_next = 0
        self._events_processed = 0
        self._cancelled_in_heap = 0
        self._profiler: Optional[Any] = None

    def _next_seq(self) -> int:
        seq = self._seq_next
        self._seq_next += 1
        return seq

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_processed

    @property
    def queue_depth(self) -> int:
        """Live (non-cancelled) events currently in the heap."""
        return len(self._heap) - self._cancelled_in_heap

    def _note_cancelled(self) -> None:
        """Bookkeeping for an in-heap cancel; compacts past ~50% dead.

        Amortized O(1): a compaction scans the whole heap but removes at
        least half of it, and the threshold must be re-reached by new
        cancels before the next scan.
        """
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= self._COMPACT_MIN_SIZE
            and 2 * self._cancelled_in_heap > len(self._heap)
        ):
            self._compact()

    # ------------------------------------------------- tombstone sweep
    #
    # Exactly two places may decrement ``_cancelled_in_heap``:
    # :meth:`_drop_cancelled` (one popped tombstone) and
    # :meth:`_compact` (bulk reset after filtering). run()/peek() both
    # sweep through these helpers, so the counter cannot drift between
    # call sites — ``queue_depth`` stays an invariant, property-tested
    # under interleaved cancel/peek/run/compact sequences.

    def _drop_cancelled(self, event: Event) -> None:
        """Detach one tombstone that was just popped off the heap."""
        event._sim = None
        self._cancelled_in_heap -= 1

    def _pop_cancelled(self) -> None:
        """Sweep cancelled entries off the top of the heap."""
        heap = self._heap
        while heap:
            event = heap[0][2]
            if event is None or not event.cancelled:
                return
            heapq.heappop(heap)
            self._drop_cancelled(event)

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors.

        Mutates the heap **in place** (``self._heap[:] = ...``) rather
        than rebinding the attribute: compaction can be triggered from
        an event callback's ``cancel()`` while a drain loop is mid-batch
        holding a local alias to the heap list. A rebind would leave
        that drain popping a stale pre-compact list — double-dropping
        tombstones and never seeing newly scheduled events.
        """
        live: List[_Entry] = []
        for entry in self._heap:
            event = entry[2]
            if event is not None and event.cancelled:
                event._sim = None
            else:
                live.append(entry)
        heapq.heapify(live)
        self._heap[:] = live
        self._cancelled_in_heap = 0

    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Attach a hot-path profiler (``None`` detaches).

        The profiler (duck-typed; see
        :class:`repro.obs.profile.SimProfiler`) receives
        ``before_event(event, heap_depth)`` / ``after_event(event)``
        around every callback. The kernel itself never reads the wall
        clock — keeping ``repro.sim`` deterministic — so any wall
        timing lives entirely in the hook object.

        Attaching (or detaching) from *inside* an event callback takes
        effect at the next drain-batch boundary, at most :data:`_BATCH`
        events later — the loop re-reads the hook per batch rather than
        hoisting it once per run, which used to ignore mid-run
        ``set_profiler`` calls entirely.
        """
        self._profiler = profiler

    # --------------------------------------------------- keyed lane
    def at(
        self,
        time: float,
        callback: Callable[[], None],
        key: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time``.

        Scheduling in the past raises ``ValueError``: components must
        never rewind the clock. ``key`` makes the event snapshotable
        (see :meth:`to_state`).
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        time = float(time)
        seq = self._seq_next
        self._seq_next = seq + 1
        event = Event(time, seq, callback, key)
        event._sim = self
        heapq.heappush(self._heap, (time, seq, event, callback))
        return event

    def after(
        self,
        delay: float,
        callback: Callable[[], None],
        key: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.at(self.now + delay, callback, key)

    # ----------------------------------------------- anonymous lane
    def at_call(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule a fire-and-forget ``callback`` at absolute ``time``.

        No :class:`Event` handle is allocated, so the entry cannot be
        cancelled and — like any unkeyed live event — makes
        :meth:`to_state` refuse while pending. This is the lane for
        completion events that are never revoked (a granted MMU job's
        issue-complete, a serial unit's service completion, zero-delay
        continuation hops); it skips one object allocation plus the
        detach bookkeeping per event, which is most of the per-event
        cost in dense arrival/completion traffic.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        seq = self._seq_next
        self._seq_next = seq + 1
        heapq.heappush(self._heap, (float(time), seq, None, callback))

    def after_call(self, delay: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`after`: no handle, not cancellable."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        seq = self._seq_next
        self._seq_next = seq + 1
        heapq.heappush(self._heap, (self.now + delay, seq, None, callback))

    def at_calls(
        self, times: Iterable[float], callback: Callable[[], None]
    ) -> int:
        """Bulk :meth:`at_call`: one ``callback`` at each of ``times``.

        Block-admission hot paths (a load generator scheduling a whole
        ``next_gaps`` block of arrivals at once) pay one bound-method
        dispatch per *block* instead of per event; the entries are
        identical to ``n`` scalar ``at_call`` calls, in argument order.
        Each time is validated against the no-past-scheduling contract
        before anything is pushed, so a bad block is all-or-nothing.
        Returns the number of entries scheduled.
        """
        entries = [float(time) for time in times]
        now = self.now
        for time in entries:
            if time < now:
                raise ValueError(
                    f"cannot schedule at {time} < now {now}"
                )
        seq = self._seq_next
        self._seq_next = seq + len(entries)
        heap = self._heap
        push = heapq.heappush
        for time in entries:
            push(heap, (time, seq, None, callback))
            seq += 1
        return len(entries)

    def drain_anonymous(
        self,
        matching: Optional[Iterable[Callable[[], None]]] = None,
        until: Optional[float] = None,
    ) -> List[Tuple[float, int, Callable[[], None]]]:
        """Extract live anonymous-lane entries from the heap.

        The escape hatch the sharded executor's forwarding mode needs:
        anonymous entries make :meth:`to_state` refuse (a closure cannot
        be serialized), but a *driver that owns those closures* can pull
        them out before snapshotting and re-inject them afterwards via
        :meth:`schedule_anonymous` — the ``(time, seq)`` pair travels
        with each entry, so the re-injected entries keep their exact
        firing order relative to every other event.

        Args:
            matching: Only extract entries whose callback is one of
                these callables (identity comparison). ``None`` extracts
                every anonymous entry — only safe when the caller knows
                no other component has fire-and-forget work in flight.
            until: Only extract entries scheduled at or before this
                time (``None`` = no time bound).

        Returns:
            ``(time, seq, callback)`` triples sorted by firing order.
        """
        match_ids = (
            None if matching is None else {id(cb) for cb in matching}
        )
        kept: List[_Entry] = []
        drained: List[Tuple[float, int, Callable[[], None]]] = []
        for entry in self._heap:
            time, seq, event, callback = entry
            if (
                event is None
                and (match_ids is None or id(callback) in match_ids)
                and (until is None or time <= until)
            ):
                drained.append((time, seq, callback))
            else:
                kept.append(entry)
        if drained:
            # In-place mutation, same aliasing contract as _compact().
            heapq.heapify(kept)
            self._heap[:] = kept
        drained.sort(key=lambda item: (item[0], item[1]))
        return drained

    def schedule_anonymous(
        self, entries: Iterable[Tuple[float, int, Callable[[], None]]]
    ) -> int:
        """Re-inject entries previously extracted by :meth:`drain_anonymous`.

        Each entry keeps its original sequence number, which must
        predate the current cursor — these are *old* entries returning,
        never new ones. A time in the past is clamped to ``now``: the
        boundary drain may have advanced the clock past an extracted
        entry's due time, and clamping makes it fire at the restore
        instant while the preserved sequence numbers keep the original
        relative order. Returns the number of entries scheduled.
        """
        count = 0
        for time, seq, callback in entries:
            seq = int(seq)
            if seq >= self._seq_next:
                raise ValueError(
                    f"anonymous entry seq {seq} was never allocated "
                    f"(cursor at {self._seq_next}); schedule_anonymous "
                    "only re-injects drained entries"
                )
            time = float(time)
            if time < self.now:
                time = self.now
            heapq.heappush(self._heap, (time, seq, None, callback))
            count += 1
        return count

    # ------------------------------------------------------- drain
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        loop: Optional[str] = None,
    ) -> str:
        """Run events until the queue drains, ``until``, or ``max_events``.

        ``until`` is inclusive: an event scheduled exactly at ``until``
        fires. The clock advance to ``until`` happens **only** on the
        ``until`` and drained stops: when the run stops because the
        event budget ran out the clock stays at the last executed
        event — there may be live events between it and ``until``, so
        advancing would fabricate simulated time that never elapsed
        (and silently skew any windowed statistic computed from
        ``now``).

        ``loop`` picks the drain implementation: ``"batched"`` (the
        default via :attr:`default_loop`) drains batch-at-a-time with
        per-batch instrumentation checks; ``"reference"`` is the
        historical scalar loop, kept as the oracle the equivalence
        suite replays fuzzed event soups against. Both produce
        identical firing order, stop reasons, clocks, profiler
        callbacks and snapshots.

        Returns the stop reason: :data:`STOP_DRAINED` (queue empty),
        :data:`STOP_UNTIL` (next live event is beyond ``until``) or
        :data:`STOP_MAX_EVENTS` (budget exhausted, **clock not
        advanced**).
        """
        if loop is None:
            loop = self.default_loop
        if loop == LOOP_BATCHED:
            return self._run_batched(until, max_events)
        if loop == LOOP_REFERENCE:
            return self._run_reference(until, max_events)
        raise ValueError(f"unknown drain loop {loop!r}; expected {_LOOPS}")

    def _run_reference(
        self, until: Optional[float], max_events: Optional[int]
    ) -> str:
        """The historical one-event-at-a-time loop (the oracle)."""
        processed = 0
        reread_at = 0
        profiler = self._profiler
        stop = STOP_DRAINED
        heap = self._heap
        while heap:
            if processed >= reread_at:
                # Same per-batch re-read contract as the batched loop.
                profiler = self._profiler
                reread_at = processed + _BATCH
            entry = heap[0]
            event = entry[2]
            if event is not None and event.cancelled:
                heapq.heappop(heap)
                self._drop_cancelled(event)
                continue
            if until is not None and entry[0] > until:
                stop = STOP_UNTIL
                break
            if max_events is not None and processed >= max_events:
                self._events_processed += processed
                return STOP_MAX_EVENTS
            heapq.heappop(heap)
            if event is not None:
                event._sim = None
            self.now = entry[0]
            if profiler is None:
                entry[3]()
            else:
                if event is None:
                    event = Event(entry[0], entry[1], entry[3])
                profiler.before_event(event, len(heap))
                entry[3]()
                profiler.after_event(event)
            processed += 1
        self._events_processed += processed
        if until is not None and self.now < until:
            self.now = float(until)
        return stop

    def _run_batched(
        self, until: Optional[float], max_events: Optional[int]
    ) -> str:
        """Batch-at-a-time drain: the production fast path."""
        budget = _NO_BUDGET if max_events is None else max_events
        processed = 0
        stop: Optional[str] = None
        while stop is None:
            profiler = self._profiler  # re-read per batch
            if profiler is None:
                stop, processed = self._drain_plain(until, budget, processed)
            else:
                stop, processed = self._drain_profiled(
                    profiler, until, budget, processed
                )
        self._events_processed += processed
        if stop == STOP_MAX_EVENTS:
            return stop  # clock deliberately not advanced
        if until is not None and self.now < until:
            self.now = float(until)
        return stop

    def _drain_plain(
        self, until: Optional[float], budget: int, processed: int
    ) -> Tuple[Optional[str], int]:
        """Drain up to one batch with no per-event instrumentation.

        Returns ``(stop_reason, processed)``; a ``None`` stop reason
        means the batch filled and the caller should re-read loop state
        and continue. Pop-first: popping the head and pushing it back
        on the rare ``until`` boundary is cheaper than peek-then-pop on
        every event.
        """
        heap = self._heap
        pop = heapq.heappop
        limit = processed + _BATCH
        if budget < limit:
            limit = budget
        if until is None:
            while heap and processed < limit:
                time, _seq, event, fire = pop(heap)
                if event is not None:
                    if event.cancelled:
                        self._drop_cancelled(event)
                        continue
                    event._sim = None
                self.now = time
                fire()
                processed += 1
        else:
            while heap and processed < limit:
                entry = pop(heap)
                time, _seq, event, fire = entry
                if event is not None:
                    if event.cancelled:
                        self._drop_cancelled(event)
                        continue
                if time > until:
                    heapq.heappush(heap, entry)
                    return STOP_UNTIL, processed
                if event is not None:
                    event._sim = None
                self.now = time
                fire()
                processed += 1
        if not heap:
            return STOP_DRAINED, processed
        if processed >= budget:
            # Budget exhausted with entries left: sweep tombstones, then
            # classify exactly as the reference loop would — until-stop
            # outranks the budget stop when the next live event is
            # already beyond the horizon.
            self._pop_cancelled()
            if not heap:
                return STOP_DRAINED, processed
            if until is not None and heap[0][0] > until:
                return STOP_UNTIL, processed
            return STOP_MAX_EVENTS, processed
        return None, processed  # batch boundary

    def _drain_profiled(
        self,
        profiler: Any,
        until: Optional[float],
        budget: int,
        processed: int,
    ) -> Tuple[Optional[str], int]:
        """One instrumented batch: profiler hooks around every event.

        Anonymous-lane entries have no handle, so the hooks receive a
        synthesized detached :class:`Event` carrying the same
        ``(time, seq, callback)`` — component attribution and
        heap-depth accounting are identical either way.
        """
        heap = self._heap
        limit = processed + _BATCH
        if budget < limit:
            limit = budget
        while heap:
            entry = heap[0]
            event = entry[2]
            if event is not None and event.cancelled:
                heapq.heappop(heap)
                self._drop_cancelled(event)
                continue
            if until is not None and entry[0] > until:
                return STOP_UNTIL, processed
            if processed >= limit:
                if processed >= budget:
                    return STOP_MAX_EVENTS, processed
                return None, processed  # batch boundary
            heapq.heappop(heap)
            if event is None:
                event = Event(entry[0], entry[1], entry[3])
            else:
                event._sim = None
            self.now = entry[0]
            profiler.before_event(event, len(heap))
            entry[3]()
            profiler.after_event(event)
            processed += 1
        return STOP_DRAINED, processed

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        key: Optional[str] = None,
    ) -> "RecurringEvent":
        """Schedule ``callback`` every ``interval`` cycles until cancelled.

        The first firing is one interval from now. Recurring events are
        the watchdog primitive of the fault-tolerance layer (the SLO
        guard samples backlog on one); they reschedule themselves, so a
        simulation holding a live recurring event never drains — cancel
        it when the observed experiment ends.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        return RecurringEvent(self, float(interval), callback, key)

    def peek(self) -> Optional[float]:
        """Timestamp of the next live event, or None when drained."""
        self._pop_cancelled()
        return self._heap[0][0] if self._heap else None

    # ------------------------------------------------------- snapshot
    def to_state(self) -> Dict[str, Any]:
        """The simulator as canonical-JSON-able state (see
        ``repro.state``).

        Live events serialize as ``(key, time, seq)`` triples; the
        callback itself is re-bound by :meth:`from_state` through the
        caller's key registry. Any live *unkeyed* event makes this
        raise :class:`SnapshotError` — a closure cannot be serialized,
        and pretending otherwise would break the bit-exact resume
        contract silently. Anonymous-lane entries are unkeyed by
        construction, so in-flight fire-and-forget work refuses the
        same way it always has; snapshot at a quiescence point.

        Tombstones (cancelled events still sitting in the heap) are
        deliberately **dropped**: cancelled events never fire and never
        influence live-event ``(time, seq)`` ordering, so the restored
        heap is observationally identical with or without them —
        ``queue_depth`` counts live events only, and the property tests
        assert bit-exact continuation across snapshots taken with a
        tombstone-laden heap.
        """
        events: List[Dict[str, Any]] = []
        recurring: List[Dict[str, Any]] = []
        for time, seq, event, _callback in sorted(self._heap):
            if event is None:
                raise SnapshotError(
                    f"live anonymous event at t={time} cannot be "
                    "snapshotted; anonymous-lane entries (at_call/"
                    "after_call) are fire-and-forget — snapshot at a "
                    "quiescence point"
                )
            if event.cancelled:
                continue
            if event._recurring is not None:
                rec = event._recurring
                if rec.key is None:
                    raise SnapshotError(
                        f"live unkeyed recurring event (interval "
                        f"{rec.interval}) cannot be snapshotted; pass "
                        "key= to Simulator.every"
                    )
                recurring.append({
                    "key": rec.key,
                    "interval": rec.interval,
                    "time": time,
                    "seq": seq,
                })
            elif event.key is None:
                raise SnapshotError(
                    f"live unkeyed event at t={time} cannot be "
                    "snapshotted; pass key= to Simulator.at/after or "
                    "snapshot at a quiescence point"
                )
            else:
                events.append({
                    "key": event.key,
                    "time": time,
                    "seq": seq,
                })
        return {
            "now": self.now,
            "seq_next": self._seq_next,
            "events_processed": self._events_processed,
            "events": events,
            "recurring": recurring,
        }

    @classmethod
    def from_state(
        cls,
        state: Dict[str, Any],
        callbacks: Dict[str, Callable[[], None]],
    ) -> "Simulator":
        """Rebuild a simulator from :meth:`to_state` output.

        ``callbacks`` maps every event key in the snapshot back to a
        callable; a missing key raises :class:`SnapshotError`. The
        restored simulator is bit-exact: same clock, same
        ``(time, seq)`` event order, same sequence cursor for events
        scheduled after the restore.
        """
        sim = cls()
        sim.now = float(state["now"])
        sim._events_processed = int(state["events_processed"])
        for entry in state["events"]:
            key = entry["key"]
            if key not in callbacks:
                raise SnapshotError(f"no callback registered for key {key!r}")
            event = Event(
                float(entry["time"]), int(entry["seq"]), callbacks[key], key
            )
            event._sim = sim
            heapq.heappush(
                sim._heap, (event.time, event.seq, event, event.callback)
            )
        for entry in state["recurring"]:
            key = entry["key"]
            if key not in callbacks:
                raise SnapshotError(f"no callback registered for key {key!r}")
            RecurringEvent._restore(
                sim, float(entry["interval"]), callbacks[key], key,
                float(entry["time"]), int(entry["seq"]),
            )
        sim._seq_next = int(state["seq_next"])
        return sim


class RecurringEvent:
    """A self-rescheduling periodic callback (see :meth:`Simulator.every`).

    ``cancel`` stops future firings; a firing in flight at cancel time
    is skipped via the underlying event's cancellation.
    """

    __slots__ = ("sim", "interval", "callback", "cancelled", "key", "_event")

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        key: Optional[str] = None,
    ):
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.cancelled = False
        self.key = key
        self._event = sim.after(interval, self._fire)
        self._event._recurring = self

    @classmethod
    def _restore(
        cls,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        key: str,
        time: float,
        seq: int,
    ) -> "RecurringEvent":
        """Rebuild from snapshot state: the pending firing keeps its
        original ``(time, seq)`` slot instead of being rescheduled."""
        rec = cls.__new__(cls)
        rec.sim = sim
        rec.interval = interval
        rec.callback = callback
        rec.cancelled = False
        rec.key = key
        event = Event(time, seq, rec._fire)
        event._sim = sim
        event._recurring = rec
        heapq.heappush(sim._heap, (time, seq, event, rec._fire))
        rec._event = event
        return rec

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.callback()
        # The callback may have cancelled *this* recurring event — at
        # that point self._event is the already-popped event whose
        # cancel() is a no-op, so an unconditional reschedule would
        # push one more live event and keep the heap from draining.
        if self.cancelled:
            return
        self._event = self.sim.after(self.interval, self._fire)
        self._event._recurring = self

    def cancel(self) -> None:
        self.cancelled = True
        self._event.cancel()
