"""Event queue and simulator kernel.

Time is measured in *cycles* of the accelerator clock, stored as floats
so that sub-cycle quantities (e.g. DRAM latencies converted from
nanoseconds) do not accumulate rounding error. Events at the same
timestamp execute in scheduling order, which keeps runs deterministic.
"""

import heapq
from typing import Any, Callable, Dict, List, Optional


class SnapshotError(RuntimeError):
    """Raised when live state cannot be captured (or restored) faithfully.

    Defined here — the bottom of the import graph — and re-exported as
    ``repro.state.SnapshotError``, which is the name everything above
    the simulator uses. It is a *refusal*, not an internal failure: the
    caller asked for a snapshot at a point where one would lie (e.g. an
    unkeyed in-flight event whose closure cannot be serialized).
    Snapshot at a quiescence point instead.
    """


#: Values :meth:`Simulator.run` returns to say why it stopped.
STOP_DRAINED = "drained"
STOP_UNTIL = "until"
STOP_MAX_EVENTS = "max_events"


class Event:
    """A scheduled callback.

    Events compare by (time, sequence number) so that simultaneous
    events fire in the order they were scheduled. Cancelled events are
    skipped when popped; the simulator additionally compacts the heap
    when cancelled entries outnumber live ones, so cancel-heavy
    workloads (watchdogs, speculative timeouts) keep O(live) memory
    instead of leaking every tombstone until drain.

    ``key`` names the *callback*, not the event: a keyed event can be
    serialized by :meth:`Simulator.to_state` and re-bound to the same
    callback on restore. Unkeyed events are fine to schedule but make
    the simulator refuse to snapshot while they are live.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "key", "_sim",
                 "_recurring")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        key: Optional[str] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.key = key
        self._sim: Optional["Simulator"] = None  # set while in the heap
        self._recurring: Optional["RecurringEvent"] = None

    def cancel(self) -> None:
        """Prevent this event from firing."""
        if self.cancelled:
            return
        self.cancelled = True
        # Only a cancel of an event still sitting in a heap creates a
        # tombstone; events already popped (or compacted out) have been
        # detached and must not skew the tombstone count.
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """A deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.at(10, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [10.0]
    """

    #: Below this heap size compaction is pointless (the scan costs more
    #: than the tombstones).
    _COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        # An explicit counter (not itertools.count) so a snapshot can
        # record and a restore can replay the exact sequence cursor —
        # the (time, seq) order of future events is part of the
        # bit-exact resume contract.
        self._seq_next = 0
        self._events_processed = 0
        self._cancelled_in_heap = 0
        self._profiler: Optional[Any] = None

    def _next_seq(self) -> int:
        seq = self._seq_next
        self._seq_next += 1
        return seq

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_processed

    @property
    def queue_depth(self) -> int:
        """Live (non-cancelled) events currently in the heap."""
        return len(self._heap) - self._cancelled_in_heap

    def _note_cancelled(self) -> None:
        """Bookkeeping for an in-heap cancel; compacts past ~50% dead.

        Amortized O(1): a compaction scans the whole heap but removes at
        least half of it, and the threshold must be re-reached by new
        cancels before the next scan.
        """
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= self._COMPACT_MIN_SIZE
            and 2 * self._cancelled_in_heap > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors."""
        live = []
        for event in self._heap:
            if event.cancelled:
                event._sim = None
            else:
                live.append(event)
        heapq.heapify(live)
        self._heap = live
        self._cancelled_in_heap = 0

    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Attach a hot-path profiler (``None`` detaches).

        The profiler (duck-typed; see
        :class:`repro.obs.profile.SimProfiler`) receives
        ``before_event(event, heap_depth)`` / ``after_event(event)``
        around every callback. The kernel itself never reads the wall
        clock — keeping ``repro.sim`` deterministic — so any wall
        timing lives entirely in the hook object.
        """
        self._profiler = profiler

    def at(
        self,
        time: float,
        callback: Callable[[], None],
        key: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time``.

        Scheduling in the past raises ``ValueError``: components must
        never rewind the clock. ``key`` makes the event snapshotable
        (see :meth:`to_state`).
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        event = Event(float(time), self._next_seq(), callback, key)
        event._sim = self
        heapq.heappush(self._heap, event)
        return event

    def after(
        self,
        delay: float,
        callback: Callable[[], None],
        key: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.at(self.now + delay, callback, key)

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> str:
        """Run events until the queue drains, ``until``, or ``max_events``.

        ``until`` is inclusive: an event scheduled exactly at ``until``
        fires. The clock advance to ``until`` happens **only** on the
        ``until`` and drained stops: when the run stops because the
        event budget ran out the clock stays at the last executed
        event — there may be live events between it and ``until``, so
        advancing would fabricate simulated time that never elapsed
        (and silently skew any windowed statistic computed from
        ``now``).

        Returns the stop reason: :data:`STOP_DRAINED` (queue empty),
        :data:`STOP_UNTIL` (next live event is beyond ``until``) or
        :data:`STOP_MAX_EVENTS` (budget exhausted, **clock not
        advanced**).
        """
        processed = 0
        profiler = self._profiler
        stop = STOP_DRAINED
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)._sim = None
                self._cancelled_in_heap -= 1
                continue
            if until is not None and event.time > until:
                stop = STOP_UNTIL
                break
            if max_events is not None and processed >= max_events:
                return STOP_MAX_EVENTS
            heapq.heappop(self._heap)._sim = None
            self.now = event.time
            if profiler is None:
                event.callback()
            else:
                profiler.before_event(event, len(self._heap))
                event.callback()
                profiler.after_event(event)
            self._events_processed += 1
            processed += 1
        if until is not None and self.now < until:
            self.now = float(until)
        return stop

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        key: Optional[str] = None,
    ) -> "RecurringEvent":
        """Schedule ``callback`` every ``interval`` cycles until cancelled.

        The first firing is one interval from now. Recurring events are
        the watchdog primitive of the fault-tolerance layer (the SLO
        guard samples backlog on one); they reschedule themselves, so a
        simulation holding a live recurring event never drains — cancel
        it when the observed experiment ends.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        return RecurringEvent(self, float(interval), callback, key)

    def peek(self) -> Optional[float]:
        """Timestamp of the next live event, or None when drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)._sim = None
            self._cancelled_in_heap -= 1
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------- snapshot
    def to_state(self) -> Dict[str, Any]:
        """The simulator as canonical-JSON-able state (see
        ``repro.state``).

        Live events serialize as ``(key, time, seq)`` triples; the
        callback itself is re-bound by :meth:`from_state` through the
        caller's key registry. Any live *unkeyed* event makes this
        raise :class:`SnapshotError` — a closure cannot be serialized,
        and pretending otherwise would break the bit-exact resume
        contract silently.

        Tombstones (cancelled events still sitting in the heap) are
        deliberately **dropped**: cancelled events never fire and never
        influence live-event ``(time, seq)`` ordering, so the restored
        heap is observationally identical with or without them —
        ``queue_depth`` counts live events only, and the property tests
        assert bit-exact continuation across snapshots taken with a
        tombstone-laden heap.
        """
        events: List[Dict[str, Any]] = []
        recurring: List[Dict[str, Any]] = []
        for event in sorted(self._heap, key=lambda e: (e.time, e.seq)):
            if event.cancelled:
                continue
            if event._recurring is not None:
                rec = event._recurring
                if rec.key is None:
                    raise SnapshotError(
                        f"live unkeyed recurring event (interval "
                        f"{rec.interval}) cannot be snapshotted; pass "
                        "key= to Simulator.every"
                    )
                recurring.append({
                    "key": rec.key,
                    "interval": rec.interval,
                    "time": event.time,
                    "seq": event.seq,
                })
            elif event.key is None:
                raise SnapshotError(
                    f"live unkeyed event at t={event.time} cannot be "
                    "snapshotted; pass key= to Simulator.at/after or "
                    "snapshot at a quiescence point"
                )
            else:
                events.append({
                    "key": event.key,
                    "time": event.time,
                    "seq": event.seq,
                })
        return {
            "now": self.now,
            "seq_next": self._seq_next,
            "events_processed": self._events_processed,
            "events": events,
            "recurring": recurring,
        }

    @classmethod
    def from_state(
        cls,
        state: Dict[str, Any],
        callbacks: Dict[str, Callable[[], None]],
    ) -> "Simulator":
        """Rebuild a simulator from :meth:`to_state` output.

        ``callbacks`` maps every event key in the snapshot back to a
        callable; a missing key raises :class:`SnapshotError`. The
        restored simulator is bit-exact: same clock, same
        ``(time, seq)`` event order, same sequence cursor for events
        scheduled after the restore.
        """
        sim = cls()
        sim.now = float(state["now"])
        sim._events_processed = int(state["events_processed"])
        for entry in state["events"]:
            key = entry["key"]
            if key not in callbacks:
                raise SnapshotError(f"no callback registered for key {key!r}")
            event = Event(
                float(entry["time"]), int(entry["seq"]), callbacks[key], key
            )
            event._sim = sim
            heapq.heappush(sim._heap, event)
        for entry in state["recurring"]:
            key = entry["key"]
            if key not in callbacks:
                raise SnapshotError(f"no callback registered for key {key!r}")
            RecurringEvent._restore(
                sim, float(entry["interval"]), callbacks[key], key,
                float(entry["time"]), int(entry["seq"]),
            )
        sim._seq_next = int(state["seq_next"])
        return sim


class RecurringEvent:
    """A self-rescheduling periodic callback (see :meth:`Simulator.every`).

    ``cancel`` stops future firings; a firing in flight at cancel time
    is skipped via the underlying event's cancellation.
    """

    __slots__ = ("sim", "interval", "callback", "cancelled", "key", "_event")

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        key: Optional[str] = None,
    ):
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.cancelled = False
        self.key = key
        self._event = sim.after(interval, self._fire)
        self._event._recurring = self

    @classmethod
    def _restore(
        cls,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        key: str,
        time: float,
        seq: int,
    ) -> "RecurringEvent":
        """Rebuild from snapshot state: the pending firing keeps its
        original ``(time, seq)`` slot instead of being rescheduled."""
        rec = cls.__new__(cls)
        rec.sim = sim
        rec.interval = interval
        rec.callback = callback
        rec.cancelled = False
        rec.key = key
        event = Event(time, seq, rec._fire)
        event._sim = sim
        event._recurring = rec
        heapq.heappush(sim._heap, event)
        rec._event = event
        return rec

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.callback()
        # The callback may have cancelled *this* recurring event — at
        # that point self._event is the already-popped event whose
        # cancel() is a no-op, so an unconditional reschedule would
        # push one more live event and keep the heap from draining.
        if self.cancelled:
            return
        self._event = self.sim.after(self.interval, self._fire)
        self._event._recurring = self

    def cancel(self) -> None:
        self.cancelled = True
        self._event.cancel()
