"""The pre-batching event loop, preserved as the perf baseline.

This module is a verbatim-faithful copy of the simulator hot paths as
they stood before the batch-drained engine landed: the heap stores
:class:`Event` objects ordered by a Python-level ``__lt__`` (every
heap operation pays ~log n interpreted comparisons, each building two
tuples), scheduling always allocates a handle, and the drain loop
peeks then pops one event at a time. It exists for exactly one
consumer — the ``sim.drain.reference`` microbench arm — so the
committed bench artifact measures the engine rewrite against the real
code it replaced, not against a flattering reconstruction.

Do not use this engine in product code: it predates the bugfix sweep
(the profiler hoist below is the historical behaviour, kept because
the baseline must price what the old loop actually did) and it is not
wired into snapshots, the anonymous lane, or the equivalence suite.
The semantics it shares with ``repro.sim.engine`` — firing order,
stop reasons, clock advancement — are pinned by a trace-equality test
so the two arms of the microbench provably simulate the same work.
"""

import heapq
from typing import Any, Callable, List, Optional

STOP_DRAINED = "drained"
STOP_UNTIL = "until"
STOP_MAX_EVENTS = "max_events"


class Event:
    """A scheduled callback, heap-ordered by interpreted ``__lt__``."""

    __slots__ = ("time", "seq", "callback", "cancelled", "key", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        key: Optional[str] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.key = key
        self._sim: Optional["Simulator"] = None  # set while in the heap

    def cancel(self) -> None:
        """Prevent this event from firing."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """The historical object-heap discrete-event simulator."""

    _COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._seq_next = 0
        self._events_processed = 0
        self._cancelled_in_heap = 0
        self._profiler: Optional[Any] = None

    def _next_seq(self) -> int:
        seq = self._seq_next
        self._seq_next += 1
        return seq

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def queue_depth(self) -> int:
        return len(self._heap) - self._cancelled_in_heap

    def _note_cancelled(self) -> None:
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= self._COMPACT_MIN_SIZE
            and 2 * self._cancelled_in_heap > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        live = []
        for event in self._heap:
            if event.cancelled:
                event._sim = None
            else:
                live.append(event)
        heapq.heapify(live)
        self._heap = live
        self._cancelled_in_heap = 0

    def set_profiler(self, profiler: Optional[Any]) -> None:
        self._profiler = profiler

    def at(
        self,
        time: float,
        callback: Callable[[], None],
        key: Optional[str] = None,
    ) -> Event:
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        event = Event(float(time), self._next_seq(), callback, key)
        event._sim = self
        heapq.heappush(self._heap, event)
        return event

    def after(
        self,
        delay: float,
        callback: Callable[[], None],
        key: Optional[str] = None,
    ) -> Event:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.at(self.now + delay, callback, key)

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> str:
        processed = 0
        # Historical behaviour, preserved on purpose: the profiler is
        # hoisted for the whole run (the bug the new engine's per-batch
        # re-read fixed).
        profiler = self._profiler
        stop = STOP_DRAINED
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)._sim = None
                self._cancelled_in_heap -= 1
                continue
            if until is not None and event.time > until:
                stop = STOP_UNTIL
                break
            if max_events is not None and processed >= max_events:
                return STOP_MAX_EVENTS
            heapq.heappop(self._heap)._sim = None
            self.now = event.time
            if profiler is None:
                event.callback()
            else:
                profiler.before_event(event, len(self._heap))
                event.callback()
                profiler.after_event(event)
            self._events_processed += 1
            processed += 1
        if until is not None and self.now < until:
            self.now = float(until)
        return stop
