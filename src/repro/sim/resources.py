"""Shared-resource models: serial units, port sets, bandwidth channels.

These are the contention points the paper's cycle-accurate simulator
models beyond the analytical equations: execution units that serve one
operation at a time, SRAM ports with a fixed width, and links (DRAM,
host) that serialize transfers at a given bytes-per-cycle rate.
"""

import heapq
import itertools
from typing import Any, Callable, Dict, Optional

from repro.sim.engine import Simulator, SnapshotError


class SerialResource:
    """A unit that serves one request at a time with priority queueing.

    Requests carry a duration (cycles of occupancy) and a priority
    (lower value = more urgent); ties break FIFO. The grant callback
    fires when service *starts*; the done callback (optional) fires when
    it completes.

    Busy-time is integrated so cycle-accounting (Figure 8) can read
    utilization per category via the ``account`` tag passed at request
    time.
    """

    def __init__(self, sim: Simulator, name: str = "resource"):
        self.sim = sim
        self.name = name
        self._queue: list = []
        self._seq = itertools.count()
        self._busy_until = 0.0
        self.busy_cycles = 0.0
        self.busy_by_tag: dict = {}

    @property
    def queue_depth(self) -> int:
        """Number of requests waiting for service."""
        return len(self._queue)

    @property
    def is_busy(self) -> bool:
        """Whether a request is currently in service."""
        return self._busy_until > self.sim.now

    def request(
        self,
        duration: float,
        on_grant: Optional[Callable[[], None]] = None,
        on_done: Optional[Callable[[], None]] = None,
        priority: int = 0,
        tag: str = "work",
    ) -> None:
        """Enqueue a request for ``duration`` cycles of exclusive service."""
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        heapq.heappush(
            self._queue,
            (priority, next(self._seq), duration, on_grant, on_done, tag),
        )
        self._pump()

    def _pump(self) -> None:
        if not self._queue or self._busy_until > self.sim.now:
            if self._queue and self._busy_until > self.sim.now:
                # A completion event will re-pump; nothing to do now.
                pass
            return
        priority, _seq, duration, on_grant, on_done, tag = heapq.heappop(self._queue)
        self._busy_until = self.sim.now + duration
        self.busy_cycles += duration
        self.busy_by_tag[tag] = self.busy_by_tag.get(tag, 0.0) + duration
        if on_grant is not None:
            on_grant()

        def _complete() -> None:
            if on_done is not None:
                on_done()
            self._pump()

        # Completions are never cancelled: use the anonymous lane and
        # skip the Event allocation on the busiest event class.
        self.sim.after_call(duration, _complete)

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of cycles busy over ``horizon`` (default: now)."""
        horizon = self.sim.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / horizon)

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): accrued meters only.

        A queued or in-service request holds closures that cannot be
        serialized, so a busy resource refuses — the owning component
        snapshots at its own quiescence point (run/iteration boundary)
        where every unit has drained.
        """
        if self._queue or self.is_busy:
            raise SnapshotError(
                f"resource {self.name!r} has in-flight work "
                f"(queued={len(self._queue)}, busy={self.is_busy}); "
                "snapshot at a quiescence point"
            )
        return {
            "busy_until": self._busy_until,
            "busy_cycles": self.busy_cycles,
            "busy_by_tag": dict(self.busy_by_tag),
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        self._busy_until = float(state["busy_until"])
        self.busy_cycles = float(state["busy_cycles"])
        self.busy_by_tag = {
            str(tag): float(cycles)
            for tag, cycles in state["busy_by_tag"].items()
        }


class PortSet:
    """``count`` identical ports in front of a structure (an SRAM bank).

    Requests are granted on the first free port; excess requests queue
    with priority. This models read/write port contention in the
    activation and weight buffers.
    """

    def __init__(self, sim: Simulator, count: int, name: str = "ports"):
        if count < 1:
            raise ValueError("a port set needs at least one port")
        self.ports = [SerialResource(sim, f"{name}[{i}]") for i in range(count)]

    def request(
        self,
        duration: float,
        on_grant: Optional[Callable[[], None]] = None,
        on_done: Optional[Callable[[], None]] = None,
        priority: int = 0,
        tag: str = "work",
    ) -> None:
        """Route the request to the least-loaded port (idle ports first,
        then shortest queue; ties to the lowest-numbered port)."""
        target = min(
            self.ports,
            key=lambda p: (p.queue_depth + (1 if p.is_busy else 0)),
        )
        target.request(duration, on_grant, on_done, priority, tag)

    @property
    def busy_cycles(self) -> float:
        return sum(p.busy_cycles for p in self.ports)

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): every port's meters."""
        return {"ports": [port.to_state() for port in self.ports]}

    def from_state(self, state: Dict[str, Any]) -> None:
        entries = state["ports"]
        if len(entries) != len(self.ports):
            raise SnapshotError(
                f"port-set snapshot has {len(entries)} ports, this set "
                f"has {len(self.ports)}"
            )
        for port, entry in zip(self.ports, entries):
            port.from_state(entry)


class BandwidthChannel:
    """A link that serializes transfers at ``bytes_per_cycle``.

    A transfer of S bytes occupies the channel for S/bytes_per_cycle
    cycles and completes ``fixed_latency`` cycles after its last byte —
    the standard pipe model the paper validated against DRAMSim for
    512-bit blocks.
    """

    def __init__(
        self,
        sim: Simulator,
        bytes_per_cycle: float,
        fixed_latency: float = 0.0,
        name: str = "channel",
    ):
        if bytes_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bytes_per_cycle = bytes_per_cycle
        self.fixed_latency = fixed_latency
        self.name = name
        self._pipe = SerialResource(sim, name)
        self.bytes_transferred = 0.0

    def transfer(
        self,
        size_bytes: float,
        on_done: Optional[Callable[[], None]] = None,
        priority: int = 0,
        tag: str = "data",
    ) -> None:
        """Enqueue a transfer; ``on_done`` fires after latency + serialization."""
        if size_bytes < 0:
            raise ValueError(f"negative transfer size {size_bytes}")
        occupancy = size_bytes / self.bytes_per_cycle
        self.bytes_transferred += size_bytes

        def _after_pipe() -> None:
            if on_done is None:
                return
            if self.fixed_latency > 0:
                self.sim.after_call(self.fixed_latency, on_done)
            else:
                on_done()

        self._pipe.request(
            occupancy, on_done=_after_pipe, priority=priority, tag=tag
        )

    @property
    def queue_depth(self) -> int:
        return self._pipe.queue_depth

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of the channel's bandwidth consumed so far."""
        return self._pipe.utilization(horizon)

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): byte meter plus the
        underlying pipe's meters (which refuses while transfers are in
        flight)."""
        return {
            "bytes_transferred": self.bytes_transferred,
            "pipe": self._pipe.to_state(),
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        self.bytes_transferred = float(state["bytes_transferred"])
        self._pipe.from_state(state["pipe"])
