"""Statistics collectors: tail latency, throughput, cycle accounting.

These produce exactly the quantities the paper's evaluation reports:
99th-percentile request latency (Figures 7, 10, 11), sustained
throughput in TOp/s (Figures 7, 9, Table 2), and the MMU cycle breakdown
into working / dummy / idle / other (Figure 8).
"""

from typing import Dict, List, Optional

import numpy as np


class LatencyStats:
    """Collects per-request latency samples and reports percentiles."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self._samples.append(latency)

    @property
    def count(self) -> int:
        return len(self._samples)

    def samples_since(self, index: int) -> List[float]:
        """Samples recorded at or after position ``index`` (for
        windowed measurements over a live run)."""
        return self._samples[index:]

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of recorded latencies."""
        if not self._samples:
            raise ValueError("no latency samples recorded")
        return float(np.percentile(self._samples, q))

    def p99(self) -> float:
        """99th-percentile latency, the paper's service-level metric."""
        return self.percentile(99.0)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no latency samples recorded")
        return float(np.mean(self._samples))

    def max(self) -> float:
        if not self._samples:
            raise ValueError("no latency samples recorded")
        return float(np.max(self._samples))


class ThroughputMeter:
    """Integrates useful operations over time to report TOp/s.

    ``record(ops)`` is called as work retires; ``top_s`` converts to
    TOp/s given the clock frequency that maps cycles to seconds.
    """

    def __init__(self) -> None:
        self.total_ops = 0.0
        self._first_cycle: Optional[float] = None
        self._last_cycle: Optional[float] = None

    def record(self, ops: float, cycle: float) -> None:
        if ops < 0:
            raise ValueError(f"negative op count {ops}")
        self.total_ops += ops
        if self._first_cycle is None:
            self._first_cycle = cycle
        self._last_cycle = cycle

    def ops_per_cycle(self, horizon_cycles: float) -> float:
        if horizon_cycles <= 0:
            return 0.0
        return self.total_ops / horizon_cycles

    def top_s(self, horizon_cycles: float, frequency_hz: float) -> float:
        """Sustained throughput in TOp/s over ``horizon_cycles``."""
        return self.ops_per_cycle(horizon_cycles) * frequency_hz / 1e12


#: Cycle categories of Figure 8.
CYCLE_CATEGORIES = ("working", "dummy", "idle", "other")


class CycleAccounting:
    """Attributes every MMU cycle to one of Figure 8's categories.

    Busy categories (working / dummy / other) are accumulated by the
    components as they occupy the unit; idle is the remainder of the
    accounting window. ``breakdown`` normalizes to fractions that sum to
    one.
    """

    def __init__(self) -> None:
        self._busy: Dict[str, float] = {c: 0.0 for c in CYCLE_CATEGORIES if c != "idle"}

    def add(self, category: str, cycles: float) -> None:
        if category == "idle":
            raise ValueError("idle cycles are derived, not recorded")
        if category not in self._busy:
            raise ValueError(
                f"unknown cycle category {category!r}; "
                f"choose from {sorted(self._busy)}"
            )
        if cycles < 0:
            raise ValueError(f"negative cycles {cycles}")
        self._busy[category] += cycles

    def busy_total(self) -> float:
        return sum(self._busy.values())

    def breakdown(self, window_cycles: float) -> Dict[str, float]:
        """Fractions per category over ``window_cycles`` (sums to 1.0)."""
        if window_cycles <= 0:
            raise ValueError("accounting window must be positive")
        busy = self.busy_total()
        if busy > window_cycles * (1 + 1e-9):
            raise ValueError(
                f"busy cycles {busy} exceed the window {window_cycles}"
            )
        result = {c: self._busy[c] / window_cycles for c in self._busy}
        result["idle"] = max(0.0, 1.0 - busy / window_cycles)
        return result
