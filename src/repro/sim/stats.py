"""Statistics collectors: tail latency, throughput, cycle accounting.

These produce exactly the quantities the paper's evaluation reports:
99th-percentile request latency (Figures 7, 10, 11), sustained
throughput in TOp/s (Figures 7, 9, Table 2), and the MMU cycle breakdown
into working / dummy / idle / other (Figure 8).
"""

import math
from typing import Dict, List, Optional, Sequence

import numpy as np


def inf_aware_percentile(values: Sequence[float], q: float) -> float:
    """``np.percentile(values, q)`` that stays deterministic with +inf.

    The fault subsystem's zero-completion convention reports a p99 of
    ``inf``; windows mixing finite latencies with that sentinel hit
    ``np.percentile``'s linear interpolation, which computes
    ``inf - inf = nan``. This helper uses the same linear-interpolation
    rank convention but resolves any interpolation step with an
    infinite endpoint analytically: a rank touching the infinite tail
    with non-zero weight is ``inf``, everything strictly inside the
    finite region matches ``np.percentile`` exactly.
    """
    if len(values) == 0:
        raise ValueError("no samples to take a percentile of")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    samples = np.sort(np.asarray(values, dtype=float))
    if np.isnan(samples).any():
        raise ValueError("samples contain NaN")
    finite_count = int(np.isfinite(samples).sum())
    if finite_count == len(samples):
        return float(np.percentile(samples, q))
    # Non-negative latencies: the infinite tail is all +inf, sorted last.
    position = q / 100.0 * (len(samples) - 1)
    lower = math.floor(position)
    fraction = position - lower
    if lower >= finite_count:
        return math.inf
    if fraction == 0.0:
        return float(samples[lower])
    if lower + 1 >= finite_count:
        return math.inf  # interpolating toward inf with non-zero weight
    low, high = float(samples[lower]), float(samples[lower + 1])
    return low + fraction * (high - low)


class LatencyStats:
    """Collects per-request latency samples and reports percentiles.

    ``+inf`` samples are legal — they are the zero-completion sentinel
    that keeps a failed run from vacuously passing the SLO — and the
    percentile math handles them deterministically (see
    :func:`inf_aware_percentile`). NaN samples are rejected outright.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, latency: float) -> None:
        if math.isnan(latency):
            raise ValueError("NaN latency sample (upstream collector bug)")
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self._samples.append(latency)

    @property
    def count(self) -> int:
        return len(self._samples)

    def samples_since(self, index: int) -> List[float]:
        """Samples recorded at or after position ``index`` (for
        windowed measurements over a live run)."""
        return self._samples[index:]

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of recorded latencies."""
        if not self._samples:
            raise ValueError("no latency samples recorded")
        return inf_aware_percentile(self._samples, q)

    def p99(self) -> float:
        """99th-percentile latency, the paper's service-level metric."""
        return self.percentile(99.0)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no latency samples recorded")
        return float(np.mean(self._samples))

    def max(self) -> float:
        if not self._samples:
            raise ValueError("no latency samples recorded")
        return float(np.max(self._samples))

    def metrics(self) -> Dict[str, float]:
        """Deferred-source view for a
        :class:`repro.obs.metrics.MetricsRegistry` (the migration path
        into the observability layer — the recording API is unchanged)."""
        if not self._samples:
            return {"count": 0.0}
        return {
            "count": float(self.count),
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
            "mean": self.mean(),
            "max": self.max(),
        }

    def to_state(self) -> Dict[str, List[float]]:
        """Snapshot (``repro.state`` contract): the full sample list —
        percentiles are order-insensitive but ``samples_since`` windows
        are not, so the sequence is preserved verbatim."""
        return {"samples": list(self._samples)}

    @classmethod
    def from_state(cls, state: Dict[str, List[float]]) -> "LatencyStats":
        stats = cls()
        stats._samples = [float(s) for s in state["samples"]]
        return stats


class ThroughputMeter:
    """Integrates useful operations over time to report TOp/s.

    ``record(ops)`` is called as work retires; ``top_s`` converts to
    TOp/s given the clock frequency that maps cycles to seconds.
    """

    def __init__(self) -> None:
        self.total_ops = 0.0
        self._first_cycle: Optional[float] = None
        self._last_cycle: Optional[float] = None

    def record(self, ops: float, cycle: float) -> None:
        if ops < 0:
            raise ValueError(f"negative op count {ops}")
        self.total_ops += ops
        if self._first_cycle is None:
            self._first_cycle = cycle
        self._last_cycle = cycle

    def ops_per_cycle(self, horizon_cycles: float) -> float:
        if horizon_cycles <= 0:
            return 0.0
        return self.total_ops / horizon_cycles

    def top_s(self, horizon_cycles: float, frequency_hz: float) -> float:
        """Sustained throughput in TOp/s over ``horizon_cycles``."""
        return self.ops_per_cycle(horizon_cycles) * frequency_hz / 1e12

    def metrics(self) -> Dict[str, float]:
        """Deferred-source view for a ``MetricsRegistry`` (total ops and
        the active cycle range; rates need a window, so the artifact
        layer computes TOp/s itself)."""
        out = {"total_ops": self.total_ops}
        if self._first_cycle is not None:
            out["first_cycle"] = self._first_cycle
        if self._last_cycle is not None:
            out["last_cycle"] = self._last_cycle
        return out

    def to_state(self) -> Dict[str, Optional[float]]:
        """Snapshot (``repro.state`` contract)."""
        return {
            "total_ops": self.total_ops,
            "first_cycle": self._first_cycle,
            "last_cycle": self._last_cycle,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Optional[float]]) -> "ThroughputMeter":
        meter = cls()
        meter.total_ops = float(state["total_ops"] or 0.0)
        first, last = state["first_cycle"], state["last_cycle"]
        meter._first_cycle = None if first is None else float(first)
        meter._last_cycle = None if last is None else float(last)
        return meter


#: Cycle categories of Figure 8.
CYCLE_CATEGORIES = ("working", "dummy", "idle", "other")


class CycleAccounting:
    """Attributes every MMU cycle to one of Figure 8's categories.

    Busy categories (working / dummy / other) are accumulated by the
    components as they occupy the unit; idle is the remainder of the
    accounting window. ``breakdown`` normalizes to fractions that sum to
    one.
    """

    def __init__(self) -> None:
        self._busy: Dict[str, float] = {c: 0.0 for c in CYCLE_CATEGORIES if c != "idle"}

    def add(self, category: str, cycles: float) -> None:
        if category == "idle":
            raise ValueError("idle cycles are derived, not recorded")
        if category not in self._busy:
            raise ValueError(
                f"unknown cycle category {category!r}; "
                f"choose from {sorted(self._busy)}"
            )
        if cycles < 0:
            raise ValueError(f"negative cycles {cycles}")
        self._busy[category] += cycles

    def busy_total(self) -> float:
        return sum(self._busy.values())

    def breakdown(self, window_cycles: float) -> Dict[str, float]:
        """Fractions per category over ``window_cycles`` (sums to 1.0)."""
        if window_cycles <= 0:
            raise ValueError("accounting window must be positive")
        busy = self.busy_total()
        if busy > window_cycles * (1 + 1e-9):
            raise ValueError(
                f"busy cycles {busy} exceed the window {window_cycles}"
            )
        result = {c: self._busy[c] / window_cycles for c in self._busy}
        result["idle"] = max(0.0, 1.0 - busy / window_cycles)
        return result

    def busy_cycles(self) -> Dict[str, float]:
        """Raw accumulated busy cycles per category (windowless — what
        delta-based captures over a shared accelerator subtract)."""
        return dict(self._busy)

    def metrics(self) -> Dict[str, float]:
        """Deferred-source view for a ``MetricsRegistry``."""
        out = {c: self._busy[c] for c in sorted(self._busy)}
        out["busy_total"] = self.busy_total()
        return out

    def to_state(self) -> Dict[str, Dict[str, float]]:
        """Snapshot (``repro.state`` contract)."""
        return {"busy": dict(self._busy)}

    @classmethod
    def from_state(cls, state: Dict[str, Dict[str, float]]) -> "CycleAccounting":
        accounting = cls()
        for category, cycles in state["busy"].items():
            accounting._busy[category] = float(cycles)
        return accounting
