"""Lightweight event tracing.

The paper validates its simulator against RTL traces; the reproduction's
equivalent validation (tests comparing the event-driven MMU model
against the functional systolic array) uses this recorder to capture
(cycle, component, event, payload) tuples for comparison.
"""

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass
class TraceRecord:
    """One traced occurrence."""

    cycle: float
    component: str
    event: str
    payload: Any = None


@dataclass
class Tracer:
    """Collects :class:`TraceRecord` entries; disabled tracers are free.

    Attributes:
        enabled: When False, :meth:`emit` is a no-op so production runs
            pay nothing.
        records: The captured trace, in emission order.
    """

    enabled: bool = True
    records: List[TraceRecord] = field(default_factory=list)

    def emit(
        self, cycle: float, component: str, event: str, payload: Any = None
    ) -> None:
        if not self.enabled:
            return
        self.records.append(TraceRecord(cycle, component, event, payload))

    def filter(
        self, component: Optional[str] = None, event: Optional[str] = None
    ) -> List[TraceRecord]:
        """Records matching the given component and/or event name."""
        out = self.records
        if component is not None:
            out = [r for r in out if r.component == component]
        if event is not None:
            out = [r for r in out if r.event == event]
        return list(out)

    def timeline(self, event: str) -> List[Tuple[float, Any]]:
        """(cycle, payload) pairs for one event type."""
        return [(r.cycle, r.payload) for r in self.records if r.event == event]

    def clear(self) -> None:
        self.records.clear()
