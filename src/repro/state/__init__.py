"""Crash-consistent checkpoint/restore for long-running experiments.

The package has three pieces:

* :mod:`repro.state.checkpoint` — the ``repro.state/checkpoint/v1``
  canonical-JSON schema, self-checksummed atomic checkpoint files
  (:class:`CheckpointStore`) and the append-only
  :class:`CompletionJournal` the execution engine replays on
  ``--resume``;
* :mod:`repro.state.protocol` — the ``to_state``/``from_state``
  snapshot contract (:class:`SnapshotError`, the ``CHECKPOINT_ROOTS``
  table the EQX406 analyzer walks, and RNG-stream helpers);
* :mod:`repro.state.signals` — graceful SIGINT/SIGTERM handling
  (:class:`GracefulShutdown` / :class:`ShutdownRequested`) so an
  interrupted run writes a final checkpoint and exits with a named
  reason instead of a traceback.

The contract everything here serves is **bit-exact resume**:
``snapshot -> kill -> restore -> continue`` must produce artifacts
byte-identical to the uninterrupted run (see DESIGN.md, "Checkpoint &
resume").
"""

from repro.state.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    CheckpointStore,
    CompletionJournal,
    read_checkpoint,
    write_checkpoint,
)
from repro.state.protocol import (
    CHECKPOINT_ROOTS,
    WINDOW_MERGE_ROOTS,
    SnapshotError,
    restore_rng,
    rng_state,
)
from repro.state.signals import GracefulShutdown, ShutdownRequested

__all__ = [
    "CHECKPOINT_ROOTS",
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointStore",
    "CompletionJournal",
    "GracefulShutdown",
    "ShutdownRequested",
    "SnapshotError",
    "WINDOW_MERGE_ROOTS",
    "read_checkpoint",
    "restore_rng",
    "rng_state",
    "write_checkpoint",
]
