"""Checkpoint files and the completed-work journal.

Two persistence primitives with one durability story:

* **Checkpoint files** hold one snapshot (``to_state`` output) under
  the ``repro.state/checkpoint/v1`` schema. They are written
  atomically — canonical JSON to a temp file in the target directory,
  fsync, then ``os.replace`` — and carry a sha256 over their own
  payload, so a reader sees either a complete, verified checkpoint or
  none at all. A kill -9 mid-write leaves the previous checkpoint
  intact.

* The **completion journal** is the resume log of the execution
  engine: one line per finished work unit, appended with flush+fsync
  before the result is reported. Each line carries its own payload
  checksum, and a torn trailing line (the crash case) is silently
  dropped on load — everything before it is intact by construction.
  ``--resume`` replays the journal the way the scheduler consults the
  result cache: completed jobs are served from the log, in-flight work
  restarts.

Both go through :mod:`repro.exec.canonical`, so checkpoint bytes are a
pure function of the state they record — the foundation of the
bit-exact resume contract.
"""

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.exec.canonical import canonical_json, config_digest, decode

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointStore",
    "CompletionJournal",
    "read_checkpoint",
    "write_checkpoint",
]

#: Schema tag of every checkpoint document (bump on layout changes).
CHECKPOINT_SCHEMA = "repro.state/checkpoint/v1"

#: Journal lines carry their own schema: the journal is a different
#: artifact (append-only log vs. single document) with its own layout.
JOURNAL_SCHEMA = "repro.state/journal/v1"


class CheckpointError(ValueError):
    """A checkpoint file exists but cannot be trusted (schema mismatch,
    checksum failure, malformed JSON). Never raised for *absent*
    checkpoints — missing means "start from zero", broken means stop."""


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp + fsync + replace)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.NamedTemporaryFile(
        "w", dir=path.parent, prefix=".tmp-", suffix=".json",
        delete=False, encoding="utf-8",
    ) as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
        temp_name = handle.name
    os.replace(temp_name, path)


def write_checkpoint(
    path: Path, state: Any, *, kind: str, step: int = 0
) -> str:
    """Atomically persist one snapshot; returns its payload digest.

    ``kind`` names what was snapshotted (e.g. ``"sweep"``,
    ``"chaos"``, ``"fleet_round"``) and is verified on read so a
    checkpoint cannot be restored into the wrong consumer. ``step`` is
    the consumer's progress marker (events processed, jobs completed,
    round index) — informational, but part of the checksummed payload.
    """
    payload = {"kind": str(kind), "step": int(step), "state": state}
    payload_text = canonical_json(payload)
    digest = config_digest(payload)
    document = {
        "schema": CHECKPOINT_SCHEMA,
        "payload": payload_text,
        "payload_sha256": digest,
    }
    _atomic_write_text(path, canonical_json(document))
    return digest


def read_checkpoint(path: Path, *, kind: Optional[str] = None) -> Dict[str, Any]:
    """Load and verify one checkpoint; returns the payload dict
    (``kind`` / ``step`` / ``state``).

    Raises :class:`CheckpointError` on any integrity failure and
    ``FileNotFoundError`` when the file is absent — the two cases
    demand different reactions (stop vs. cold start), so they are
    different exceptions.
    """
    text = path.read_text(encoding="utf-8")
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(document, dict):
        raise CheckpointError(f"{path}: checkpoint document is not an object")
    if document.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path}: schema {document.get('schema')!r}, "
            f"expected {CHECKPOINT_SCHEMA!r}"
        )
    payload_text = document.get("payload")
    if not isinstance(payload_text, str):
        raise CheckpointError(f"{path}: missing payload")
    if config_digest(decode(payload_text)) != document.get("payload_sha256"):
        raise CheckpointError(f"{path}: payload checksum mismatch")
    payload = decode(payload_text)
    if kind is not None and payload.get("kind") != kind:
        raise CheckpointError(
            f"{path}: checkpoint kind {payload.get('kind')!r}, "
            f"expected {kind!r}"
        )
    return payload


class CheckpointStore:
    """Latest-wins checkpoint files, one per ``kind``, in one directory.

    Each ``save`` atomically replaces ``<dir>/<kind>.ckpt.json``; the
    store never keeps history (the bit-exact contract makes any valid
    checkpoint as good as any other — resuming from an older one just
    recomputes more). ``load`` returns ``None`` when no checkpoint of
    that kind exists yet.
    """

    def __init__(self, directory: Path):
        self.directory = Path(directory)

    def path_for(self, kind: str) -> Path:
        return self.directory / f"{kind}.ckpt.json"

    def save(self, kind: str, state: Any, *, step: int = 0) -> Path:
        path = self.path_for(kind)
        write_checkpoint(path, state, kind=kind, step=step)
        return path

    def load(self, kind: str) -> Optional[Dict[str, Any]]:
        """The latest payload of ``kind``, or ``None`` before the first
        save. Corrupt files raise :class:`CheckpointError`."""
        path = self.path_for(kind)
        try:
            return read_checkpoint(path, kind=kind)
        except FileNotFoundError:
            return None


class CompletionJournal:
    """Append-only log of finished work units, tolerant of torn tails.

    One canonical-JSON line per completion::

        {"key": ..., "result": ..., "schema": ..., "sha256": ...}

    where ``sha256`` covers ``{"key", "result"}``. ``append`` flushes
    and fsyncs before returning, so a journal line exists iff its
    result was durably recorded — the scheduler appends *before*
    surfacing a result, making the journal a prefix of the truth. On
    load, a trailing line that fails to parse or checksum is dropped
    (the kill -9 case: a partially flushed last line); a corrupt line
    *followed by valid lines* is real corruption and raises.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self._entries: Dict[str, Any] = {}
        self._loaded = False

    def _iter_lines(self) -> Iterator[Tuple[int, str]]:
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        for number, line in enumerate(text.splitlines(), start=1):
            if line.strip():
                yield number, line

    def load(self) -> Dict[str, Any]:
        """Replay the journal into a ``key -> result`` map (cached)."""
        if self._loaded:
            return self._entries
        lines: List[Tuple[int, str]] = list(self._iter_lines())
        for position, (number, line) in enumerate(lines):
            entry = self._parse(number, line, last=position == len(lines) - 1)
            if entry is not None:
                key, result = entry
                self._entries[key] = result
        self._loaded = True
        return self._entries

    def _parse(
        self, number: int, line: str, *, last: bool
    ) -> Optional[Tuple[str, Any]]:
        try:
            record = json.loads(line)
            if record.get("schema") != JOURNAL_SCHEMA:
                raise CheckpointError(
                    f"{self.path}:{number}: journal schema "
                    f"{record.get('schema')!r}, expected {JOURNAL_SCHEMA!r}"
                )
            body = {"key": record["key"], "result": record["result"]}
            if config_digest(from_canonical(body)) != record["sha256"]:
                raise CheckpointError(
                    f"{self.path}:{number}: journal line checksum mismatch"
                )
            return str(record["key"]), from_canonical(body)["result"]
        except (json.JSONDecodeError, KeyError, AttributeError) as exc:
            if last:
                return None  # torn tail from a crash mid-append
            raise CheckpointError(
                f"{self.path}:{number}: corrupt journal line "
                f"followed by valid lines ({exc})"
            ) from exc
        except CheckpointError:
            if last:
                return None
            raise

    def get(self, key: str) -> Optional[Any]:
        return self.load().get(key)

    def __contains__(self, key: str) -> bool:
        return key in self.load()

    def __len__(self) -> int:
        return len(self.load())

    def append(self, key: str, result: Any) -> None:
        """Durably record one completion (flush + fsync before return).

        The journal line is built by splicing ``schema`` and ``sha256``
        into the already-canonical body text: canonical JSON sorts keys
        (``key`` < ``result`` < ``schema`` < ``sha256``) and both
        spliced values are plain ASCII, so the spliced line is
        byte-identical to ``canonical_json`` of the full record while
        serializing the result once instead of three times — on
        large-result jobs that serialization, not the fsync, dominates
        the barrier cost.
        """
        entries = self.load()
        body_text = canonical_json({"key": str(key), "result": result})
        digest = hashlib.sha256(body_text.encode("utf-8")).hexdigest()
        line = (
            body_text[:-1]
            + f',"schema":"{JOURNAL_SCHEMA}","sha256":"{digest}"}}'
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        # Cache the *normalized* result so in-process reads match what a
        # fresh process would replay from disk.
        entries[str(key)] = decode(body_text)["result"]


def from_canonical(value: Any) -> Any:
    """Round-trip a value through canonical JSON (normalization).

    Journal checksums must be computed over the *normalized* form —
    what a reader reconstructs from the line — or a result containing
    e.g. a tuple would checksum differently before and after the disk
    round-trip.
    """
    return decode(canonical_json(value))
