"""The snapshot contract: ``to_state`` / ``from_state``.

A *snapshotable* class exposes a symmetric pair

* ``to_state() -> dict`` — a canonical-JSON-able description of every
  piece of mutable state the object owns, and
* ``from_state(state, ...) -> None`` (or a classmethod returning a new
  instance) — the inverse, restoring an object that behaves
  **bit-exactly** like the original from that point on.

"Bit-exact" is the whole contract: after restore, continuing the run
must produce artifacts byte-identical to the uninterrupted run. State a
class cannot faithfully restore (in-flight event closures, live OS
handles) must make the snapshot *fail loudly* with
:class:`SnapshotError` rather than silently degrade — callers then
snapshot at a documented quiescence point instead (run boundaries for
the accelerator, iteration boundaries for the training engine, round
boundaries for the fleet; see DESIGN.md).

``CHECKPOINT_ROOTS`` names the classes checkpoints start from. The
EQX406 whole-program rule walks the attribute graph from these roots
and errors on any reachable stateful class whose ``to_state`` /
``from_state`` pair is missing or asymmetric — the table is parsed
statically, so keep it a literal dict of ``root_id: "module:Class"``.
"""

from typing import Any, Dict

import numpy as np

# SnapshotError lives at the bottom of the import graph (the simulator
# both raises it and is imported by half the codebase); this module is
# its public home.
from repro.sim.engine import SnapshotError

__all__ = [
    "CHECKPOINT_ROOTS",
    "SnapshotError",
    "WINDOW_MERGE_ROOTS",
    "restore_rng",
    "rng_state",
]


#: The classes checkpoints are rooted at, as ``root_id: "module:Class"``.
#: Parsed statically by the EQX406 snapshot-coverage rule: every
#: stateful class reachable from these roots through ``__init__``
#: attribute assignments must carry a symmetric to_state/from_state
#: pair. Factory-constructed strategy classes (schedulers, batching
#: policies, arrival processes) are listed explicitly because attribute
#: type inference cannot see through their factories.
CHECKPOINT_ROOTS: Dict[str, str] = {
    "simulator": "repro.sim.engine:Simulator",
    "accelerator": "repro.core.equinox:EquinoxAccelerator",
    "fleet": "repro.cluster.fleet:EquinoxFleet",
    "scheduler.priority": "repro.core.scheduler:PriorityScheduler",
    "scheduler.fair": "repro.core.scheduler:FairScheduler",
    "scheduler.inference_only": "repro.core.scheduler:InferenceOnlyScheduler",
    "scheduler.software": "repro.core.scheduler:SoftwareScheduler",
    "batching.static": "repro.core.batching:StaticBatching",
    "batching.adaptive": "repro.core.batching:AdaptiveBatching",
    "arrivals.poisson": "repro.workload.loadgen:PoissonArrivals",
    "arrivals.uniform": "repro.workload.loadgen:UniformArrivals",
    "arrivals.faulty": "repro.workload.loadgen:FaultyArrivals",
    "arrivals.trace": "repro.workload.loadgen:TraceArrivals",
    "arrivals.mixed": "repro.workload.loadgen:MixedArrivals",
    "batching.pull": "repro.core.batching:PullBatching",
    "serve.router": "repro.serve.router:FleetRouter",
    "capture": "repro.eval.runner:ExperimentCapture",
    "sketch.quantile": "repro.obs.sketch:QuantileSketch",
    "fault.counters": "repro.faults.counters:FaultCounters",
}


#: The metric roots the sharded executor folds across window boundaries
#: (``repro.exec.shard``'s ordered merge). Parsed statically by the
#: EQX40x window-merge rule: each must carry ``merge_state(state)``
#: alongside the symmetric snapshot pair, and the fold must be
#: *order-preserving-exact* — merging per-window ``to_state`` snapshots
#: in boundary order reproduces the serial run's object bit for bit.
WINDOW_MERGE_ROOTS: Dict[str, str] = {
    "capture": "repro.eval.runner:ExperimentCapture",
    "sketch.quantile": "repro.obs.sketch:QuantileSketch",
    "fault.counters": "repro.faults.counters:FaultCounters",
}


def rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """A numpy Generator's stream position as canonical-JSON-able state.

    PCG64 state is a nest of plain (big) integers, which Python's JSON
    round-trips exactly — no precision caveats.
    """
    return {"bit_generator": dict(rng.bit_generator.state)}


def restore_rng(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    """Rewind ``rng`` to a position captured by :func:`rng_state`.

    The generator must already be of the same bit-generator family
    (always ``default_rng`` here); numpy validates and raises otherwise.
    """
    raw = state["bit_generator"]
    # Canonical JSON round-trips dict values losslessly, but nested
    # state dicts come back as plain dicts — exactly what numpy wants.
    rng.bit_generator.state = {
        key: (dict(value) if isinstance(value, dict) else value)
        for key, value in raw.items()
    }
