"""Graceful SIGINT/SIGTERM handling for ``python -m repro`` runs.

The CLI wraps its dispatch in :class:`GracefulShutdown`; work loops
call ``check()`` at their barriers (between jobs, between scenarios).
A signal does not interrupt mid-computation — it flips a flag, and the
next ``check()`` raises :class:`ShutdownRequested`, at which point the
caller writes its final checkpoint, flushes any partial RunReport, and
exits with the conventional ``128 + signum`` code and a named reason
instead of a traceback. A second signal while the first is still
pending restores the default handler, so an impatient double Ctrl-C
still kills the process immediately.
"""

import signal
from types import FrameType, TracebackType
from typing import Optional, Type

__all__ = ["GracefulShutdown", "ShutdownRequested"]

_HANDLED = (signal.SIGINT, signal.SIGTERM)


class ShutdownRequested(RuntimeError):
    """A handled signal arrived; unwind through a checkpoint and exit."""

    def __init__(self, signum: int):
        self.signum = int(signum)
        self.signame = signal.Signals(signum).name
        super().__init__(f"shutdown requested by {self.signame}")

    @property
    def exit_code(self) -> int:
        """The shell convention for signal exits: ``128 + signum``
        (130 for SIGINT, 143 for SIGTERM)."""
        return 128 + self.signum


class GracefulShutdown:
    """Context manager that converts SIGINT/SIGTERM into a polled flag.

    Usage::

        with GracefulShutdown() as shutdown:
            for unit in work:
                shutdown.check()   # raises ShutdownRequested if signalled
                run(unit)

    Handlers are installed on ``__enter__`` and restored on
    ``__exit__``; nesting is unsupported (and unnecessary — one
    instance guards one CLI invocation).
    """

    def __init__(self) -> None:
        self._pending: Optional[int] = None
        self._previous: dict = {}

    def _handle(self, signum: int, frame: Optional[FrameType]) -> None:
        if self._pending is not None:
            # Second signal: the user means it. Fall back to the default
            # disposition so the *next* one terminates immediately.
            for signo in _HANDLED:
                signal.signal(signo, signal.SIG_DFL)
        self._pending = signum

    def __enter__(self) -> "GracefulShutdown":
        for signo in _HANDLED:
            self._previous[signo] = signal.signal(signo, self._handle)
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        for signo, handler in self._previous.items():
            signal.signal(signo, handler)
        self._previous.clear()

    @property
    def pending(self) -> Optional[int]:
        """The signal number waiting to be honoured, if any."""
        return self._pending

    def check(self) -> None:
        """Raise :class:`ShutdownRequested` if a signal has arrived."""
        if self._pending is not None:
            raise ShutdownRequested(self._pending)
