"""Synthesis proxy: component-level area/power reports (Table 3).

The paper synthesizes Equinox_500µs's compute units and controllers
(Synopsys DC, TSMC 28 nm) and adds CACTI SRAM and HBM interface
numbers. This package produces the same component table from the
calibrated technology model, including the dispatcher logic whose
sub-1 % overhead is one of the paper's headline results, and the
uniform-encoding overhead comparison against a fixed-point-only
inference accelerator.
"""

from repro.synth.report import (
    ComponentReport,
    SynthesisReport,
    synthesize,
    encoding_overhead,
)

__all__ = [
    "ComponentReport",
    "SynthesisReport",
    "synthesize",
    "encoding_overhead",
]
