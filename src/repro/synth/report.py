"""Component-level area/power synthesis proxy (Table 3).

Each block of Figure 3 gets an area/power estimate from the calibrated
technology constants:

* MMU — m·n²·w ALUs at the encoding's synthesis density and energy;
* DRAM interface — the HBM PHY/controller reservation;
* SIMD unit — bfloat16 lanes plus the 5 MB register file (this block
  exists *because* of HBFP training support: it is the uniform-encoding
  overhead relative to a fixed-point-only inference accelerator);
* weight/activation buffers — CACTI-style density, per-cycle traffic
  energy, and leakage;
* request/instruction dispatchers — queue SRAM plus controller logic;
  their sub-1 % share is one of the paper's headline results;
* others — instruction buffer, im2col, host interface, clocking.
"""

from dataclasses import dataclass
from typing import List

from repro.dse.tech import TechnologyModel, TSMC28
from repro.hw.config import MB, AcceleratorConfig

#: Fixed blocks not broken out elsewhere (im2col, host interface,
#: clock tree, misc glue) — constants in the paper's Table 3 spirit.
OTHERS_AREA_MM2 = 6.39
OTHERS_POWER_W = 3.77

#: Controller logic constants (synthesized dispatcher logic scales
#: weakly with the batch target through queue/comparator sizing).
REQUEST_DISPATCHER_LOGIC_MM2 = 0.40
REQUEST_DISPATCHER_PER_SLOT_MM2 = 0.002
REQUEST_DISPATCHER_LOGIC_W = 0.10
REQUEST_DISPATCHER_PER_SLOT_W = 0.0005
INSTRUCTION_DISPATCHER_AREA_MM2 = 0.46
INSTRUCTION_DISPATCHER_POWER_W = 0.14
REQUEST_DESCRIPTOR_BYTES = 64


@dataclass(frozen=True)
class ComponentReport:
    """One row of Table 3."""

    name: str
    area_mm2: float
    power_w: float


@dataclass(frozen=True)
class SynthesisReport:
    """The full component table for one configuration."""

    config_name: str
    components: List[ComponentReport]

    @property
    def total_area_mm2(self) -> float:
        return sum(c.area_mm2 for c in self.components)

    @property
    def total_power_w(self) -> float:
        return sum(c.power_w for c in self.components)

    def component(self, name: str) -> ComponentReport:
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(f"no component named {name!r}")

    def share(self, *names: str) -> "tuple[float, float]":
        """(area fraction, power fraction) of the named components."""
        area = sum(self.component(n).area_mm2 for n in names)
        power = sum(self.component(n).power_w for n in names)
        return area / self.total_area_mm2, power / self.total_power_w


def _buffer_report(
    name: str,
    capacity_bytes: float,
    traffic_bytes_per_cycle: float,
    config: AcceleratorConfig,
    tech: TechnologyModel,
) -> ComponentReport:
    mb = capacity_bytes / MB
    area = mb * tech.sram_area_mm2_per_mb
    dynamic = (
        config.frequency_hz
        * traffic_bytes_per_cycle
        * tech.sram_energy_j_per_byte(config.frequency_hz)
    )
    static = mb * tech.sram_static_w_per_mb
    return ComponentReport(name, area, dynamic + static)


def synthesize(
    config: AcceleratorConfig, tech: TechnologyModel = TSMC28
) -> SynthesisReport:
    """Produce the Table 3 component breakdown for ``config``."""
    f = config.frequency_hz
    n, m, w = config.n, config.m, config.w
    encoding = config.encoding
    operand_bytes = tech.encoding_costs(encoding).operand_bytes

    mmu = ComponentReport(
        "MMU",
        config.total_alus * tech.encoding_costs(encoding).alu_area_um2 / 1e6,
        f * config.total_alus * tech.alu_energy_j(encoding, f),
    )
    dram = ComponentReport("DRAM Interface", tech.dram_area_mm2, tech.dram_power_w)

    simd_rf_mb = config.sram.simd_rf_bytes / MB
    simd = ComponentReport(
        "SIMD Unit",
        config.simd_lanes * tech.simd_lane_area_um2 / 1e6
        + simd_rf_mb * tech.sram_area_mm2_per_mb,
        f * config.simd_lanes * tech.simd_lane_energy_j(f)
        + simd_rf_mb * tech.sram_static_w_per_mb,
    )

    weight_buffer = _buffer_report(
        "Weight Buffer",
        config.sram.weight_bytes,
        m * w * n * operand_bytes,
        config,
        tech,
    )
    activation_buffer = _buffer_report(
        "Activation Buffer",
        config.sram.activation_bytes,
        (w * n + m * n) * operand_bytes,
        config,
        tech,
    )

    # Front-end controllers: request queues + batch formation buffer
    # descriptors, and the instruction controller/decoder/completion
    # unit. These are the blocks Equinox adds or modifies.
    slots = 3 * n  # formation buffer + two context request queues
    queue_mb = slots * REQUEST_DESCRIPTOR_BYTES / MB
    request_dispatcher = ComponentReport(
        "Request Dispatcher",
        REQUEST_DISPATCHER_LOGIC_MM2
        + n * REQUEST_DISPATCHER_PER_SLOT_MM2
        + queue_mb * tech.sram_area_mm2_per_mb,
        REQUEST_DISPATCHER_LOGIC_W + n * REQUEST_DISPATCHER_PER_SLOT_W,
    )
    instruction_dispatcher = ComponentReport(
        "Instruction Dispatcher",
        INSTRUCTION_DISPATCHER_AREA_MM2,
        INSTRUCTION_DISPATCHER_POWER_W,
    )
    others = ComponentReport("Others", OTHERS_AREA_MM2, OTHERS_POWER_W)

    return SynthesisReport(
        config_name=config.name,
        components=[
            mmu,
            dram,
            simd,
            weight_buffer,
            activation_buffer,
            request_dispatcher,
            instruction_dispatcher,
            others,
        ],
    )


def encoding_overhead(
    config: AcceleratorConfig, tech: TechnologyModel = TSMC28
) -> dict:
    """Overheads of supporting training, vs a fixed-point inference
    accelerator of the same shape (the paper's closing comparison).

    The uniform-encoding overhead is, as the paper counts it, the SIMD
    unit: its large bfloat16 ALU array and register file exist because
    HBFP hands GEMM outputs to a floating-point vector unit; a
    fixed-point-only inference accelerator would carry a far smaller
    activation unit. The controller overhead is the two dispatchers.
    The per-ALU exponent-handling delta inside the MMU is also
    reported, for completeness, against a fixed8 MMU of equal shape.
    """
    report = synthesize(config, tech)
    fixed = synthesize(
        AcceleratorConfig(
            name=f"{config.name}_fixed8",
            n=config.n,
            m=config.m,
            w=config.w,
            frequency_hz=config.frequency_hz,
            encoding="fixed8",
            sram=config.sram,
            dram=config.dram,
            simd_lanes=config.simd_lanes,
        ),
        tech,
    )
    simd_area, simd_power = report.share("SIMD Unit")
    ctrl_area, ctrl_power = report.share(
        "Request Dispatcher", "Instruction Dispatcher"
    )
    mmu = report.component("MMU")
    mmu_fixed = fixed.component("MMU")
    return {
        "encoding_area_overhead": simd_area,
        "encoding_power_overhead": simd_power,
        "controller_area_overhead": ctrl_area,
        "controller_power_overhead": ctrl_power,
        "mmu_exponent_area_overhead": (
            (mmu.area_mm2 - mmu_fixed.area_mm2) / report.total_area_mm2
        ),
        "mmu_exponent_power_overhead": (
            (mmu.power_w - mmu_fixed.power_w) / report.total_power_w
        ),
    }
