"""Training substrate: SGD through the real quantized-GEMM datapaths.

Figure 2 of the paper shows that hbfp8 training matches fp32
convergence (ResNet50/ImageNet validation error, BERT/Wikipedia
perplexity). Those datasets and model scales are out of reach offline,
so this package reproduces the *claim under test* at laptop scale: a
numpy neural-network library whose every GEMM routes through
:func:`repro.arith.gemm` — the same functional hbfp8/bfloat16/fixed8
pipelines the accelerator datapath models use — trained end-to-end by
SGD on synthetic classification (Figure 2a analog) and a character
language model for perplexity (Figure 2b analog).
"""

from repro.train.nn import (
    Linear,
    ReLU,
    Tanh,
    Sequential,
    softmax_cross_entropy,
)
from repro.train.optimizer import SGD
from repro.train.data import (
    synthetic_image_classes,
    synthetic_char_corpus,
    batch_iterator,
)
from repro.train.trainer import Trainer, TrainingCurve
from repro.train.convergence import (
    convergence_experiment,
    perplexity_experiment,
)

__all__ = [
    "Linear",
    "ReLU",
    "Tanh",
    "Sequential",
    "softmax_cross_entropy",
    "SGD",
    "synthetic_image_classes",
    "synthetic_char_corpus",
    "batch_iterator",
    "Trainer",
    "TrainingCurve",
    "convergence_experiment",
    "perplexity_experiment",
]
