"""Figure 2 experiments: hbfp8 vs fp32 convergence.

Both experiments train identical architectures from identical
initializations on identical batch orders, varying only the GEMM
encoding — so any divergence between the curves is attributable to
the arithmetic, which is precisely Figure 2's claim.
"""

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.train.data import synthetic_char_corpus, synthetic_image_classes
from repro.train.nn import Linear, ReLU, Sequential
from repro.train.optimizer import SGD
from repro.train.trainer import Trainer, TrainingCurve


def _mlp(
    in_dim: int, hidden: int, classes: int, encoding: str, seed: int
) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(in_dim, hidden, encoding=encoding, rng=rng),
        ReLU(),
        Linear(hidden, hidden, encoding=encoding, rng=rng),
        ReLU(),
        Linear(hidden, classes, encoding=encoding, rng=rng),
    )


def classification_setup(
    encoding: str,
    samples: int = 2400,
    hidden: int = 128,
    classes: int = 10,
    seed: int = 7,
) -> "Tuple[Trainer, Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]":
    """Build the Figure 2a trainer and data splits for one encoding.

    Dataset generation and model initialization are both functions of
    ``seed`` alone, so every caller — the serial experiment, a forward
    shard, a replay worker — reconstructs bit-identical starting state
    from pure parameters. Returns ``(trainer, train, valid)``.
    """
    x, y = synthetic_image_classes(samples=samples, classes=classes, seed=seed)
    split = int(0.8 * samples)
    train, valid = (x[:split], y[:split]), (x[split:], y[split:])
    model = _mlp(x.shape[1], hidden, classes, encoding, seed)
    trainer = Trainer(model, SGD(lr=0.05, momentum=0.9), batch=64, seed=seed)
    return trainer, train, valid


def convergence_experiment(
    encodings: Sequence[str] = ("fp32", "hbfp8"),
    epochs: int = 12,
    samples: int = 2400,
    hidden: int = 128,
    classes: int = 10,
    seed: int = 7,
    kernel_backend: "str | None" = None,
) -> Dict[str, TrainingCurve]:
    """Figure 2a analog: validation error on image-like classification.

    Returns one validation-error curve per encoding; matched seeds make
    the curves directly comparable. ``kernel_backend`` pins the
    :mod:`repro.kernels` backend for the whole experiment (``None`` =
    ambient; backends are bit-identical, so curves cannot depend on it).
    """
    from repro.kernels import use_backend

    curves: Dict[str, TrainingCurve] = {}
    with use_backend(kernel_backend):
        for encoding in encodings:
            trainer, train, valid = classification_setup(
                encoding,
                samples=samples,
                hidden=hidden,
                classes=classes,
                seed=seed,
            )
            curves[encoding] = trainer.fit(train, valid, epochs, encoding)
    return curves


def _char_lm_dataset(
    corpus: np.ndarray, vocab: int, context: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Next-character prediction from a one-hot context window."""
    windows = len(corpus) - context
    x = np.zeros((windows, context * vocab), dtype=np.float32)
    y = np.empty(windows, dtype=np.int64)
    for offset in range(context):
        chars = corpus[offset : offset + windows]
        x[np.arange(windows), offset * vocab + chars] = 1.0
    y[:] = corpus[context : context + windows]
    return x, y


def language_model_setup(
    encoding: str,
    corpus_length: int = 12000,
    vocab: int = 32,
    context: int = 3,
    hidden: int = 96,
    seed: int = 11,
) -> "Tuple[Trainer, Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]":
    """Build the Figure 2b trainer and data splits for one encoding.

    Pure function of its parameters (see :func:`classification_setup`);
    the sharded executor relies on this to reconstruct identical state
    in every worker. Returns ``(trainer, train, valid)``.
    """
    corpus = synthetic_char_corpus(length=corpus_length, vocab=vocab, seed=seed)
    x, y = _char_lm_dataset(corpus, vocab, context)
    split = int(0.85 * len(x))
    train, valid = (x[:split], y[:split]), (x[split:], y[split:])
    model = _mlp(x.shape[1], hidden, vocab, encoding, seed)
    trainer = Trainer(model, SGD(lr=0.1, momentum=0.9), batch=64, seed=seed)
    return trainer, train, valid


def perplexity_experiment(
    encodings: Sequence[str] = ("fp32", "hbfp8"),
    epochs: int = 10,
    corpus_length: int = 12000,
    vocab: int = 32,
    context: int = 3,
    hidden: int = 96,
    seed: int = 11,
    kernel_backend: "str | None" = None,
) -> Dict[str, TrainingCurve]:
    """Figure 2b analog: validation perplexity of a char language model.

    The Markov corpus has low entropy, so a converging model's
    perplexity falls far below the uniform baseline (= vocab); the
    comparison is whether hbfp8 tracks fp32 down that curve.
    ``kernel_backend`` pins the :mod:`repro.kernels` backend for the
    whole experiment (``None`` = ambient).
    """
    from repro.kernels import use_backend

    curves: Dict[str, TrainingCurve] = {}
    with use_backend(kernel_backend):
        for encoding in encodings:
            trainer, train, valid = language_model_setup(
                encoding,
                corpus_length=corpus_length,
                vocab=vocab,
                context=context,
                hidden=hidden,
                seed=seed,
            )
            curves[encoding] = trainer.fit(train, valid, epochs, encoding)
    return curves
