"""Synthetic datasets for the convergence experiments.

Offline stand-ins for the paper's ImageNet and Wikipedia corpora,
scaled so the *comparison* (hbfp8 vs fp32 convergence) is meaningful:

* :func:`synthetic_image_classes` — image-like classification with
  class-specific spatial templates plus noise and per-sample contrast
  jitter, so the task needs a real nonlinear decision boundary and the
  activations have the wide, shifting dynamic ranges that break naive
  fixed point (and that HBFP's per-tile exponents absorb);
* :func:`synthetic_char_corpus` — character sequences from a sparse
  first-order Markov chain, giving a language-modeling task with a
  well-defined (non-zero) optimal perplexity.
"""

from typing import Iterator, Tuple

import numpy as np


def synthetic_image_classes(
    samples: int = 2000,
    classes: int = 10,
    side: int = 12,
    noise: float = 0.9,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Class-templated noisy images, flattened to vectors.

    Each class owns a smooth random template; samples are the template
    under random contrast/brightness jitter plus Gaussian noise.

    Returns:
        (x, y): x of shape (samples, side²) float32, y int labels.
    """
    if samples < classes:
        raise ValueError("need at least one sample per class")
    rng = np.random.default_rng(seed)
    # Smooth templates: low-frequency random fields.
    freq = 3
    basis = rng.standard_normal((classes, freq, freq))
    templates = np.zeros((classes, side, side))
    axis = np.linspace(0, np.pi, side)
    for c in range(classes):
        for i in range(freq):
            for j in range(freq):
                templates[c] += basis[c, i, j] * np.outer(
                    np.cos(axis * (i + 1)), np.cos(axis * (j + 1))
                )
    templates /= np.abs(templates).max(axis=(1, 2), keepdims=True)

    labels = rng.integers(0, classes, size=samples)
    contrast = rng.uniform(0.5, 2.0, size=(samples, 1, 1))
    brightness = rng.uniform(-0.3, 0.3, size=(samples, 1, 1))
    images = (
        templates[labels] * contrast
        + brightness
        + noise * rng.standard_normal((samples, side, side))
    )
    return images.reshape(samples, side * side).astype(np.float32), labels


def synthetic_char_corpus(
    length: int = 20000,
    vocab: int = 32,
    branching: int = 4,
    seed: int = 0,
) -> np.ndarray:
    """A character stream from a sparse first-order Markov chain.

    Every character can be followed by only ``branching`` successors
    (with random probabilities), so a model that learns the chain
    approaches the chain's entropy; one that does not sits near
    uniform perplexity (= ``vocab``).

    Returns:
        Integer array of shape (length,) with values in [0, vocab).
    """
    if vocab < 2 or branching < 1 or branching > vocab:
        raise ValueError("need 2 <= branching <= vocab")
    rng = np.random.default_rng(seed)
    successors = np.array(
        [rng.choice(vocab, size=branching, replace=False) for _ in range(vocab)]
    )
    probs = rng.dirichlet(np.ones(branching) * 2.0, size=vocab)
    stream = np.empty(length, dtype=np.int64)
    state = int(rng.integers(vocab))
    for i in range(length):
        stream[i] = state
        state = int(rng.choice(successors[state], p=probs[state]))
    return stream


def batch_iterator(
    x: np.ndarray,
    y: np.ndarray,
    batch: int,
    seed: int = 0,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """One shuffled epoch of (x, y) minibatches (last partial kept)."""
    if len(x) != len(y):
        raise ValueError("feature/label length mismatch")
    if batch < 1:
        raise ValueError("batch must be positive")
    order = np.random.default_rng(seed).permutation(len(x))
    for start in range(0, len(x), batch):
        idx = order[start : start + batch]
        yield x[idx], y[idx]
