"""Minimal neural-network layers over encoding-dispatched GEMM.

Every matrix multiplication — forward activations, input gradients,
weight gradients — goes through :func:`repro.arith.gemm.gemm` under the
layer's configured encoding, mirroring how Equinox's MMU would execute
them; elementwise work runs in bfloat16 when the encoding is hbfp8
(the SIMD unit's precision) and master weights stay in fp32, exactly
the HBFP training recipe.
"""

from typing import Any, Dict, List, Optional

import numpy as np

from repro.arith.bfloat16 import to_bfloat16
from repro.arith.gemm import gemm


def _simd_round(x: np.ndarray, encoding: str) -> np.ndarray:
    """Round elementwise results the way the datapath would."""
    if encoding in ("hbfp8", "bfloat16"):
        return to_bfloat16(x)
    return np.asarray(x, dtype=np.float32)


class Module:
    """Base layer: forward caches what backward needs."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[np.ndarray]:
        return []

    def gradients(self) -> List[np.ndarray]:
        return []

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Linear(Module):
    """Fully connected layer with quantized GEMMs.

    Attributes:
        weight: fp32 master weights, shape (in_features, out_features).
        bias: fp32 master bias, shape (out_features,).
        encoding: GEMM datapath encoding for all three products.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        encoding: str = "fp32",
        rng: Optional[np.random.Generator] = None,
    ):
        if in_features < 1 or out_features < 1:
            raise ValueError("layer dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.weight = (rng.standard_normal((in_features, out_features)) * scale).astype(
            np.float32
        )
        self.bias = np.zeros(out_features, dtype=np.float32)
        self.encoding = encoding
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = np.asarray(x, dtype=np.float32)
        out = gemm(self._input, self.weight, self.encoding) + self.bias
        return _simd_round(out, self.encoding)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward before forward")
        grad = np.asarray(grad, dtype=np.float32)
        # Weight gradient: X^T @ dY through the quantized datapath.
        self.grad_weight = gemm(self._input.T, grad, self.encoding)
        self.grad_bias = grad.sum(axis=0)
        # Input gradient: dY @ W^T through the quantized datapath.
        return gemm(grad, self.weight.T, self.encoding)

    def parameters(self) -> List[np.ndarray]:
        return [self.weight, self.bias]

    def gradients(self) -> List[np.ndarray]:
        return [self.grad_weight, self.grad_bias]

    def to_state(self) -> Dict[str, Any]:
        """The fp32 masters as JSON-able state, exactly (Python floats
        are binary64, a superset of binary32 — the round trip is
        bit-exact). Gradients and the forward cache are transient:
        both are fully overwritten before their next use, so an
        epoch-boundary snapshot omits them."""
        return {"weight": self.weight.tolist(), "bias": self.bias.tolist()}

    def from_state(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`to_state` on a same-shape layer."""
        weight = np.asarray(state["weight"], dtype=np.float32)
        bias = np.asarray(state["bias"], dtype=np.float32)
        if weight.shape != self.weight.shape or bias.shape != self.bias.shape:
            raise ValueError(
                f"layer shape mismatch: snapshot {weight.shape}/"
                f"{bias.shape} vs layer {self.weight.shape}/{self.bias.shape}"
            )
        self.weight = weight
        self.bias = bias
        self.grad_weight = np.zeros_like(weight)
        self.grad_bias = np.zeros_like(bias)


class ReLU(Module):
    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward")
        return np.where(self._mask, grad, 0.0).astype(np.float32)


class Tanh(Module):
    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x).astype(np.float32)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward before forward")
        return (grad * (1.0 - self._out**2)).astype(np.float32)


class Sequential(Module):
    """Layer chain."""

    def __init__(self, *layers: Module):
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters()]

    def gradients(self) -> List[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients()]

    def to_state(self) -> Dict[str, Any]:
        """Positional layer states (``None`` for stateless layers)."""
        return {
            "layers": [
                layer.to_state() if hasattr(layer, "to_state") else None
                for layer in self.layers
            ]
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        """Restore onto an identically constructed chain."""
        entries = state["layers"]
        if len(entries) != len(self.layers):
            raise ValueError(
                f"layer count mismatch: snapshot has {len(entries)}, "
                f"chain has {len(self.layers)}"
            )
        for layer, entry in zip(self.layers, entries):
            if (entry is not None) != hasattr(layer, "from_state"):
                raise ValueError(
                    "snapshot layer kinds do not match the chain"
                )
            if entry is not None:
                layer.from_state(entry)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> "tuple[float, np.ndarray]":
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    Args:
        logits: (batch, classes) scores.
        labels: (batch,) integer class labels.

    Returns:
        (loss, grad) with grad already divided by the batch size.
    """
    # Loss evaluation runs on the SIMD unit's bfloat16/fp32 side, not
    # the quantized GEMM datapath; full precision here is intentional.
    logits = np.asarray(logits, dtype=np.float64)  # eqx: ignore[EQX301]
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ValueError("logits must be (batch, classes), labels (batch,)")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    batch = logits.shape[0]
    nll = -np.log(probs[np.arange(batch), labels] + 1e-12)
    grad = probs
    grad[np.arange(batch), labels] -= 1.0
    return float(nll.mean()), (grad / batch).astype(np.float32)
