"""Optimizers for the training substrate.

SGD with momentum on fp32 master parameters — the update path HBFP
keeps in full precision (only GEMMs are block floating point). Updates
happen in place so layers keep referencing the same arrays.
"""

from typing import Any, Dict, List, Optional

import numpy as np


class SGD:
    """Stochastic gradient descent with classical momentum.

    Attributes:
        lr: Learning rate.
        momentum: Momentum coefficient (0 disables).
        weight_decay: L2 coefficient applied to the gradients.
    """

    def __init__(
        self,
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Optional[List[np.ndarray]] = None

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        """Apply one in-place update to the fp32 master parameters."""
        if len(params) != len(grads):
            raise ValueError("parameter/gradient count mismatch")
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        if len(self._velocity) != len(params):
            raise ValueError("optimizer bound to a different parameter set")
        for param, grad, vel in zip(params, grads, self._velocity):
            g = grad
            if self.weight_decay:
                g = g + self.weight_decay * param
            vel *= self.momentum
            vel -= self.lr * g
            param += vel

    def set_lr(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def to_state(self) -> Dict[str, Any]:
        """Hyperparameters plus the exact fp32 momentum buffers
        (``None`` before the first step, like the live attribute)."""
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "velocity": (
                None if self._velocity is None
                else [v.tolist() for v in self._velocity]
            ),
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`to_state`."""
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        self.weight_decay = float(state["weight_decay"])
        velocity = state["velocity"]
        self._velocity = (
            None if velocity is None
            else [np.asarray(v, dtype=np.float32) for v in velocity]
        )
