"""Training loop and validation-curve collection."""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.train.data import batch_iterator
from repro.train.nn import Sequential, softmax_cross_entropy
from repro.train.optimizer import SGD


@dataclass
class TrainingCurve:
    """Per-epoch validation metrics — the series Figure 2 plots."""

    encoding: str
    epochs: List[int] = field(default_factory=list)
    validation_error: List[float] = field(default_factory=list)
    validation_loss: List[float] = field(default_factory=list)

    @property
    def final_error(self) -> float:
        if not self.validation_error:
            raise ValueError("no epochs recorded")
        return self.validation_error[-1]

    @property
    def final_perplexity(self) -> float:
        """Perplexity of the final epoch (exp of the mean NLL)."""
        if not self.validation_loss:
            raise ValueError("no epochs recorded")
        return float(np.exp(self.validation_loss[-1]))

    def perplexities(self) -> List[float]:
        return [float(np.exp(loss)) for loss in self.validation_loss]


class Trainer:
    """SGD classification trainer over the quantized-GEMM layers.

    Args:
        model: The network (built with the desired GEMM encoding).
        optimizer: Parameter updater (fp32 masters).
        batch: Minibatch size.
        seed: Shuffling seed, fixed so encodings see identical batches
            and the curves are directly comparable.
        registry: Optional :class:`MetricsRegistry` — the loop then
            maintains ``train.epochs``/``train.batches`` counters, a
            ``train.batch_loss`` histogram and validation gauges.
    """

    def __init__(
        self,
        model: Sequential,
        optimizer: Optional[SGD] = None,
        batch: int = 64,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.model = model
        self.optimizer = optimizer or SGD(lr=0.05, momentum=0.9)
        self.batch = batch
        self.seed = seed
        self.registry = registry

    def train_epoch(self, x: np.ndarray, y: np.ndarray, epoch: int) -> float:
        """One epoch of SGD; returns the mean training loss."""
        losses = []
        registry = self.registry
        for bx, by in batch_iterator(x, y, self.batch, seed=self.seed + epoch):
            logits = self.model(bx)
            loss, grad = softmax_cross_entropy(logits, by)
            self.model.backward(grad)
            self.optimizer.step(self.model.parameters(), self.model.gradients())
            losses.append(loss)
            if registry is not None:
                registry.counter("train.batches").inc()
                if loss >= 0:
                    registry.histogram("train.batch_loss").observe(loss)
        if registry is not None:
            registry.counter("train.epochs").inc()
        return float(np.mean(losses))

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
        """(error %, mean loss) on a held-out set."""
        logits = self.model(x)
        loss, _ = softmax_cross_entropy(logits, y)
        predictions = np.argmax(logits, axis=1)
        error = float(np.mean(predictions != y) * 100.0)
        return error, loss

    def fit(
        self,
        train: Tuple[np.ndarray, np.ndarray],
        valid: Tuple[np.ndarray, np.ndarray],
        epochs: int,
        encoding_label: str = "fp32",
    ) -> TrainingCurve:
        """Train for ``epochs`` epochs, recording the validation curve."""
        if epochs < 1:
            raise ValueError("need at least one epoch")
        return self.run_epochs(train, valid, 1, epochs, encoding_label)

    def run_epochs(
        self,
        train: Tuple[np.ndarray, np.ndarray],
        valid: Tuple[np.ndarray, np.ndarray],
        first_epoch: int,
        last_epoch: int,
        encoding_label: str = "fp32",
        evaluate: bool = True,
    ) -> TrainingCurve:
        """Train epochs ``[first_epoch, last_epoch]``, inclusive.

        The batch order is seeded per epoch (``seed + epoch``) and the
        model/optimizer state round-trips exactly through
        ``to_state``/``from_state``, so a run split into epoch windows
        — with or without per-epoch evaluation, which only touches
        transient forward caches — produces bit-identical parameters
        and curve segments to one uninterrupted :meth:`fit`. This is
        the window unit :mod:`repro.exec.shard` replays in parallel.
        """
        if first_epoch < 1 or last_epoch < first_epoch:
            raise ValueError(
                f"bad epoch range [{first_epoch}, {last_epoch}]"
            )
        curve = TrainingCurve(encoding=encoding_label)
        for epoch in range(first_epoch, last_epoch + 1):
            self.train_epoch(train[0], train[1], epoch)
            if not evaluate:
                continue
            error, loss = self.evaluate(valid[0], valid[1])
            curve.epochs.append(epoch)
            curve.validation_error.append(error)
            curve.validation_loss.append(loss)
            if self.registry is not None:
                self.registry.gauge("train.validation_error").set(error)
                self.registry.gauge("train.validation_loss").set(loss)
        return curve

    def to_state(self) -> Dict[str, Any]:
        """The resumable training state at an epoch boundary: model
        masters and optimizer momentum (batch/seed are construction
        parameters, not state)."""
        return {
            "model": self.model.to_state(),
            "optimizer": self.optimizer.to_state(),
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`to_state` on an identically built trainer."""
        self.model.from_state(state["model"])
        self.optimizer.from_state(state["optimizer"])
