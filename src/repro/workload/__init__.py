"""Load generation and service-level metrics.

The paper's methodology (§5) drives Equinox with a load generator that
creates inference requests at Poisson arrival rates while training
requests are always backlogged, and sets the 99th-percentile latency
target at 10× the mean service time on the 500 µs configuration. This
package provides the arrival processes (plus diurnal/spike scenarios
for the examples) and the metric helpers the evaluation uses.
"""

from repro.workload.loadgen import (
    ArrivalProcess,
    PoissonArrivals,
    UniformArrivals,
    TraceArrivals,
)
from repro.workload.scenarios import diurnal_load_profile, spike_load_profile
from repro.workload.metrics import latency_target_cycles, offered_rate

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "UniformArrivals",
    "TraceArrivals",
    "diurnal_load_profile",
    "spike_load_profile",
    "latency_target_cycles",
    "offered_rate",
]
