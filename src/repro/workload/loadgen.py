"""Inference arrival processes.

Online inference tiers see Poisson-like request arrivals (paper §5);
the generators here produce inter-arrival gaps in cycles for the
simulator's arrival loop. All processes are deterministic given a seed.

:class:`FaultyArrivals` decorates any base process with front-end
network faults from a :class:`repro.faults.plan.RequestFaultSpec`:
dropped requests (the arrival never happens — consecutive gaps merge)
and delayed requests (the arrival, and the stream behind it, reaches
the queue late). Both are sampled from a seeded fault-plan substream,
so a lossy trace replays identically.
"""

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.faults.counters import FaultCounters
from repro.faults.plan import FaultPlan
from repro.state.protocol import restore_rng, rng_state


class ArrivalProcess:
    """Produces inter-arrival gaps (cycles) one at a time."""

    def next_gap(self) -> float:
        raise NotImplementedError

    def next_gaps(self, n: int) -> List[float]:
        """``n`` consecutive gaps, identical to ``n`` next_gap() calls.

        The contract is *stream equality*: the returned gaps AND the
        generator's post-call RNG position must match the scalar loop
        exactly, so callers may mix scalar and batched draws freely.
        This generic fallback simply loops; subclasses with
        data-independent draws override it with one vectorized draw
        (see :meth:`PoissonArrivals.next_gaps`). Processes whose draw
        count depends on sampled values (:class:`FaultyArrivals`' drop
        loop) must keep the loop — a fixed-size vector draw would
        consume the wrong number of variates.
        """
        if n < 0:
            raise ValueError(f"negative batch size {n}")
        return [self.next_gap() for _ in range(n)]


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a fixed mean rate.

    Attributes:
        rate_per_cycle: Mean arrivals per cycle (λ).
        seed: RNG seed — an int, or a sequence of ints for a keyed
            substream (``[seed, crc32(label), index]``, the
            ``repro.faults`` discipline); equal seeds produce equal
            traces, keeping experiments reproducible.
    """

    def __init__(self, rate_per_cycle: float, seed: Union[int, Sequence[int]] = 0):
        if rate_per_cycle <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate_per_cycle = rate_per_cycle
        self._scale = 1.0 / rate_per_cycle
        self._rng = np.random.default_rng(seed)

    def next_gap(self) -> float:
        return float(self._rng.exponential(self._scale))

    def next_gaps(self, n: int) -> List[float]:
        """One vectorized exponential draw, stream-equal to ``n``
        scalar draws — numpy fills the array with the same ziggurat
        routine the scalar path runs, so the variates and the final RNG
        position are bit-identical (locked by test)."""
        if n < 0:
            raise ValueError(f"negative batch size {n}")
        return self._rng.exponential(self._scale, n).tolist()

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): rate + RNG position."""
        return {"rate_per_cycle": self.rate_per_cycle, "rng": rng_state(self._rng)}

    def from_state(self, state: Dict[str, Any]) -> None:
        self.rate_per_cycle = float(state["rate_per_cycle"])
        self._scale = 1.0 / self.rate_per_cycle
        restore_rng(self._rng, state["rng"])


class UniformArrivals(ArrivalProcess):
    """Fixed-gap arrivals — the zero-variance reference for tests."""

    def __init__(self, gap_cycles: float):
        if gap_cycles <= 0:
            raise ValueError("gap must be positive")
        self.gap_cycles = gap_cycles

    def next_gap(self) -> float:
        return self.gap_cycles

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): the process is
        memoryless, so its config is its state."""
        return {"gap_cycles": self.gap_cycles}

    def from_state(self, state: Dict[str, Any]) -> None:
        self.gap_cycles = float(state["gap_cycles"])


class FaultyArrivals(ArrivalProcess):
    """A base arrival process seen through a lossy, laggy front end.

    Drops thin the stream (a dropped request's gap merges into the
    next survivor's), delays stretch it; both are counted in the shared
    :class:`FaultCounters` so reports show how much offered load the
    network itself destroyed.

    Attributes:
        base: The undisturbed arrival process.
        plan: The fault plan whose ``requests`` spec and seed drive the
            injection (substream ``"arrivals"``).
        counters: Shared fault/recovery counters.
    """

    def __init__(
        self,
        base: ArrivalProcess,
        plan: FaultPlan,
        counters: Optional[FaultCounters] = None,
    ):
        self.base = base
        self.spec = plan.requests
        self.counters = counters if counters is not None else FaultCounters()
        self._rng = plan.rng("arrivals")

    def next_gap(self) -> float:
        spec = self.spec
        gap = self.base.next_gap()
        while spec.drop_rate > 0 and self._rng.random() < spec.drop_rate:
            self.counters.requests_dropped += 1
            gap += self.base.next_gap()
        if (
            spec.delay_rate > 0
            and spec.delay_cycles > 0
            and self._rng.random() < spec.delay_rate
        ):
            self.counters.requests_delayed += 1
            gap += spec.delay_cycles
        return gap

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): the base process's
        state plus the fault substream position (counters are owned —
        and snapshotted — by the accelerator, not the decorator)."""
        return {"base": self.base.to_state(), "rng": rng_state(self._rng)}

    def from_state(self, state: Dict[str, Any]) -> None:
        self.base.from_state(state["base"])
        restore_rng(self._rng, state["rng"])


class MixedArrivals(ArrivalProcess):
    """Deterministic merge of K independent arrival streams.

    Each component stream (one per tenant in ``repro.serve``) keeps its
    own clock; the compositor emits the globally next arrival and tags
    it with its source stream index. Component gaps are drawn in blocks
    through :meth:`ArrivalProcess.next_gaps`, so a fault-free
    :class:`PoissonArrivals` component refills with one vectorized draw
    while a :class:`FaultyArrivals` component keeps its data-dependent
    scalar loop — the stream-equality contract makes both identical to
    scalar draws.

    Ties between streams break on the lower stream index, so the merge
    order is a pure function of the component seeds.

    Attributes:
        streams: The component processes, in tenant registration order.
        last_source: Index of the stream that produced the most recent
            :meth:`next_gap` arrival (``None`` before the first draw).
    """

    def __init__(self, streams: Sequence[ArrivalProcess], block: int = 64):
        if not streams:
            raise ValueError("need at least one component stream")
        if block < 1:
            raise ValueError(f"refill block must be >= 1, got {block}")
        self.streams = list(streams)
        self._block = block
        #: Per-stream buffered *absolute* arrival times, ascending.
        self._pending: List[Deque[float]] = [deque() for _ in self.streams]
        #: Per-stream clock: absolute time of the last buffered arrival.
        self._clocks: List[float] = [0.0 for _ in self.streams]
        #: Merged-stream clock: absolute time of the last emitted arrival.
        self._now = 0.0
        self.last_source: Optional[int] = None

    def _refill(self, index: int) -> None:
        clock = self._clocks[index]
        pending = self._pending[index]
        for gap in self.streams[index].next_gaps(self._block):
            clock += gap
            pending.append(clock)
        self._clocks[index] = clock

    def next_tagged(self) -> Tuple[float, int]:
        """The next merged gap plus its source stream index."""
        for index, pending in enumerate(self._pending):
            if not pending:
                self._refill(index)
        winner = min(
            range(len(self.streams)), key=lambda i: (self._pending[i][0], i)
        )
        arrival = self._pending[winner].popleft()
        gap = arrival - self._now
        self._now = arrival
        self.last_source = winner
        return gap, winner

    def next_gap(self) -> float:
        gap, _ = self.next_tagged()
        return gap

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): component states plus
        the buffered arrivals and all clocks — a restored compositor
        continues the merged stream bit-exactly, including arrivals
        that were drawn into a block buffer but not yet emitted."""
        return {
            "streams": [stream.to_state() for stream in self.streams],
            "pending": [list(pending) for pending in self._pending],
            "clocks": list(self._clocks),
            "now": self._now,
            "last_source": self.last_source,
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        if len(state["streams"]) != len(self.streams):
            raise ValueError(
                f"snapshot has {len(state['streams'])} component stream(s), "
                f"compositor has {len(self.streams)}"
            )
        for stream, entry in zip(self.streams, state["streams"]):
            stream.from_state(entry)
        self._pending = [
            deque(float(t) for t in pending) for pending in state["pending"]
        ]
        self._clocks = [float(clock) for clock in state["clocks"]]
        self._now = float(state["now"])
        source = state["last_source"]
        self.last_source = None if source is None else int(source)


class TraceArrivals(ArrivalProcess):
    """Replays a recorded gap trace, cycling when exhausted."""

    def __init__(self, gaps_cycles: Sequence[float]):
        gaps = [float(g) for g in gaps_cycles]
        if not gaps or min(gaps) < 0:
            raise ValueError("trace needs non-negative gaps")
        self._gaps = gaps
        # An explicit cursor (not an iterator) so the replay position
        # is snapshotable state.
        self._index = 0

    def next_gap(self) -> float:
        gap = self._gaps[self._index]
        self._index = (self._index + 1) % len(self._gaps)
        return gap

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): trace + cursor."""
        return {"gaps": list(self._gaps), "index": self._index}

    def from_state(self, state: Dict[str, Any]) -> None:
        self._gaps = [float(g) for g in state["gaps"]]
        self._index = int(state["index"]) % len(self._gaps)
