"""Inference arrival processes.

Online inference tiers see Poisson-like request arrivals (paper §5);
the generators here produce inter-arrival gaps in cycles for the
simulator's arrival loop. All processes are deterministic given a seed.
"""

from typing import Iterator, Sequence

import numpy as np


class ArrivalProcess:
    """Produces inter-arrival gaps (cycles) one at a time."""

    def next_gap(self) -> float:
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a fixed mean rate.

    Attributes:
        rate_per_cycle: Mean arrivals per cycle (λ).
        seed: RNG seed; two generators with equal seeds produce equal
            traces, keeping experiments reproducible.
    """

    def __init__(self, rate_per_cycle: float, seed: int = 0):
        if rate_per_cycle <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate_per_cycle = rate_per_cycle
        self._rng = np.random.default_rng(seed)

    def next_gap(self) -> float:
        return float(self._rng.exponential(1.0 / self.rate_per_cycle))


class UniformArrivals(ArrivalProcess):
    """Fixed-gap arrivals — the zero-variance reference for tests."""

    def __init__(self, gap_cycles: float):
        if gap_cycles <= 0:
            raise ValueError("gap must be positive")
        self.gap_cycles = gap_cycles

    def next_gap(self) -> float:
        return self.gap_cycles


class TraceArrivals(ArrivalProcess):
    """Replays a recorded gap trace, cycling when exhausted."""

    def __init__(self, gaps_cycles: Sequence[float]):
        gaps = [float(g) for g in gaps_cycles]
        if not gaps or min(gaps) < 0:
            raise ValueError("trace needs non-negative gaps")
        self._gaps = gaps
        self._iter: Iterator[float] = iter(())

    def next_gap(self) -> float:
        try:
            return next(self._iter)
        except StopIteration:
            self._iter = iter(self._gaps)
            return next(self._iter)
