"""Service-level metric helpers.

The paper sets the inference 99th-percentile latency target at 10× the
workload's mean service time on the Equinox_500µs configuration (§5,
following the tail-latency literature), and expresses offered load as a
fraction of an accelerator's saturation request rate.
"""

#: The paper's service-level objective: p99 within this multiple of the
#: mean service time.
SLO_MULTIPLE = 10.0


def latency_target_cycles(
    mean_service_cycles: float, multiple: float = SLO_MULTIPLE
) -> float:
    """The p99 latency goal in cycles."""
    if mean_service_cycles <= 0:
        raise ValueError("service time must be positive")
    if multiple <= 0:
        raise ValueError("SLO multiple must be positive")
    return multiple * mean_service_cycles


def offered_rate(
    load_fraction: float, capacity_requests_per_cycle: float
) -> float:
    """Arrival rate (requests/cycle) at a load fraction of capacity."""
    if not 0.0 < load_fraction:
        raise ValueError("load fraction must be positive")
    if capacity_requests_per_cycle <= 0:
        raise ValueError("capacity must be positive")
    return load_fraction * capacity_requests_per_cycle
