"""Canned load profiles for the examples.

DNN inference accelerators average around 30 % load because of service
demand variability (paper §1, citing warehouse-scale studies): diurnal
swings plus short spikes. These helpers produce load-fraction profiles
the examples replay to show how much training Equinox harvests across a
day and how the spike guard protects latency.
"""

from typing import List

import numpy as np


def diurnal_load_profile(
    points: int = 24,
    low: float = 0.1,
    high: float = 0.7,
    peak_hour: float = 14.0,
) -> List[float]:
    """A sinusoidal day: load fraction per hour-of-day bucket.

    Args:
        points: Number of buckets across the day.
        low: Trough load fraction.
        high: Peak load fraction.
        peak_hour: Hour (0-24) at which the peak lands.
    """
    if not 0.0 <= low <= high <= 1.0:
        raise ValueError("need 0 <= low <= high <= 1")
    if points < 1:
        raise ValueError("need at least one bucket")
    hours = np.arange(points) * 24.0 / points
    phase = (hours - peak_hour) / 24.0 * 2.0 * np.pi
    wave = 0.5 * (1.0 + np.cos(phase))
    return [float(low + (high - low) * v) for v in wave]


def spike_load_profile(
    points: int = 40,
    base: float = 0.3,
    spike: float = 0.95,
    spike_start: int = 15,
    spike_len: int = 5,
) -> List[float]:
    """A flat load with one rectangular spike — the scenario the spike
    guard (priority scheduler threshold) exists for."""
    if not 0.0 <= base <= 1.0 and 0.0 <= spike <= 1.0:
        raise ValueError("load fractions must be in [0, 1]")
    if spike_start < 0 or spike_len < 0 or spike_start + spike_len > points:
        raise ValueError("spike window must fit in the profile")
    profile = [base] * points
    for i in range(spike_start, spike_start + spike_len):
        profile[i] = spike
    return profile
