"""EQX202: loop-counter abuse the hardware cannot execute.

Two artifacts: a repeat count below the counter's [2, 65536] range,
and a nest deeper than the controller's loop counters.
"""

from repro.hw.config import AcceleratorConfig
from repro.hw.instructions import Instruction, InstructionImage, Opcode


def build():
    config = AcceleratorConfig(
        name="fixture", n=4, m=2, w=2, frequency_hz=1e9, encoding="hbfp8"
    )
    bad_repeat = InstructionImage(
        service="inference",
        instructions=[
            Instruction(Opcode.LOOP, (1,)),  # repeat 1 needs no loop
            Instruction(Opcode.MATMUL_TILE, (0,)),
        ],
    )
    too_deep = InstructionImage(
        service="inference",
        instructions=[
            Instruction(Opcode.LOOP, (4,)),
            Instruction(Opcode.LOOP, (4,)),
            Instruction(Opcode.LOOP, (4,)),
            Instruction(Opcode.LOOP, (4,)),
            Instruction(Opcode.LOOP, (4,)),  # fifth level: no counter left
            Instruction(Opcode.MATMUL_TILE, (0,)),
        ],
    )
    return config, [bad_repeat, too_deep]
