"""EQX203 (warnings): instructions that occupy buffer bytes for nothing.

Leading/back-to-back BARRIERs, a LOOP with an empty body, and a
trailing LOOP. Gate with ``--fail-on warning`` — dead code wastes the
scarce 32 KB but executes correctly.
"""

from repro.hw.config import AcceleratorConfig
from repro.hw.instructions import Instruction, InstructionImage, Opcode


def build():
    config = AcceleratorConfig(
        name="fixture", n=4, m=2, w=2, frequency_hz=1e9, encoding="hbfp8"
    )
    image = InstructionImage(
        service="inference",
        instructions=[
            Instruction(Opcode.BARRIER, ()),  # fences nothing (leading)
            Instruction(Opcode.MATMUL_TILE, (0,)),
            Instruction(Opcode.BARRIER, ()),
            Instruction(Opcode.BARRIER, ()),  # fences nothing (repeated)
            Instruction(Opcode.LOOP, (8,)),
            Instruction(Opcode.BARRIER, ()),  # empty loop body
            Instruction(Opcode.MATMUL_TILE, (0,)),
            Instruction(Opcode.LOOP, (8,)),  # trailing: nothing to repeat
        ],
    )
    return config, image
