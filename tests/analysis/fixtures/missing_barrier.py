"""EQX205: LOAD after STORE with no BARRIER fence.

The regression this corpus entry pins: the training image's
parameter-server round trip (gradients out, fresh model in) is a
read-before-write hazard unless a BARRIER separates the STORE_OUTPUT
from the next LOAD_WEIGHTS.
"""

from repro.hw.config import AcceleratorConfig
from repro.hw.instructions import Instruction, InstructionImage, Opcode


def build():
    config = AcceleratorConfig(
        name="fixture", n=4, m=2, w=2, frequency_hz=1e9, encoding="hbfp8"
    )
    instructions = [
        Instruction(Opcode.LOAD_WEIGHTS, ()),
        Instruction(Opcode.MATMUL_TILE, (0,)),
        Instruction(Opcode.STORE_OUTPUT, ()),  # gradients out
        Instruction(Opcode.LOAD_WEIGHTS, ()),  # fresh model, unfenced!
        Instruction(Opcode.MATMUL_TILE, (0,)),
    ]
    return config, InstructionImage(service="training", instructions=instructions)
