"""EQX201: an instruction image past the 32 KB buffer.

This pins the ResNet50-training failure mode: a monolithic CNN
backward pass materializes an order of magnitude more instructions
than the buffer holds, and the verifier must reject the install
instead of letting the host silently truncate the image.
"""

from repro.hw.config import AcceleratorConfig
from repro.hw.instructions import Instruction, InstructionImage, Opcode


def build():
    config = AcceleratorConfig(
        name="fixture", n=4, m=2, w=2, frequency_hz=1e9, encoding="hbfp8"
    )
    # 16 B per instruction x 3000 = 48 KB > the 32 KB buffer.
    instructions = [Instruction(Opcode.MATMUL_TILE, (k,)) for k in range(3000)]
    return config, InstructionImage(service="inference", instructions=instructions)
