"""EQX104: a training job streaming more operands than the staging slice.

The < 2 % SRAM staging cap (paper section 2.2) is what lets training
piggyback without evicting inference's working set; a compiler that
emits a job whose weight stream exceeds it must be caught at install.
"""

from repro.hw.config import AcceleratorConfig
from repro.hw.isa import MMUJob, Program, StepProgram


def build():
    config = AcceleratorConfig(
        name="fixture", n=4, m=2, w=2, frequency_hz=1e9, encoding="hbfp8"
    )
    # staging_bytes is ~1.57 MB for the default SRAM budget; one job
    # streaming 4 MB of weights cannot be staged.
    job = MMUJob(
        cycles=1_000_000.0,
        rows=4,
        macs=1_000_000.0,
        utilization=0.9,
        weight_bytes=4e6,
    )
    program = Program(
        name="staging_overflow",
        steps=[StepProgram(mmu_jobs=[job], label="wgrad")],
        rows=4,
        useful_ops_per_row=1.0,
    )
    return config, program
