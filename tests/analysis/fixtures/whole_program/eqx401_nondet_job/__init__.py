"""EQX401 fixture: a registered job that is transitively nondeterministic."""
