"""The fn_id -> callable table the analyzer decodes."""

_REGISTRY = {
    "demo.job": "eqx401_nondet_job.tasks:run_demo",
}
