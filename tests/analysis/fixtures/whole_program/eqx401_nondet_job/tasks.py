"""The wall clock hides one call down: only interprocedural analysis
sees it from the registered entry point."""

import time


def _stamp():
    return time.time()


def run_demo(config, seed):
    return {"stamp": _stamp(), "seed": seed}
