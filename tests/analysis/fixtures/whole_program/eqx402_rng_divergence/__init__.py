"""EQX402 fixture: a kernel pair whose backends draw rng differently."""
