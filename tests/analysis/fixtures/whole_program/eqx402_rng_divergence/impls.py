"""Reference draws normal(); fast draws random() — same count, same
receiver, different stream consumption."""


def ref_scale(x, rng):
    noise = rng.normal(0.0, 1.0)
    return x + noise


def fast_scale(x, rng):
    noise = rng.random()
    return x + noise
