"""A register_kernel call site shaped like repro.kernels' own."""

from eqx402_rng_divergence.impls import fast_scale, ref_scale


def register_kernel(name, reference, fast):
    return (name, reference, fast)


PAIR = register_kernel("demo.scale", ref_scale, fast_scale)
