"""EQX403 fixture: a registered job whose result depends on the
environment, which the (config, seed) cache key never sees."""
