_REGISTRY = {
    "env.job": "eqx403_cache_escape.tasks:run_env",
}
