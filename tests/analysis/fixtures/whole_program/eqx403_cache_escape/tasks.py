import os


def run_env(config, seed):
    return {"home": os.environ.get("HOME", ""), "seed": seed}
