"""EQX404 fixture: a registry target that does not exist, plus a
job-shaped function in the target module that was never registered."""
