_REGISTRY = {
    "ghost.job": "eqx404_unregistered.tasks:vanished",
}
