def orphan_job(config, seed):
    return {"seed": seed}
