"""EQX405 fixture: a merge_state fold with a side effect."""
