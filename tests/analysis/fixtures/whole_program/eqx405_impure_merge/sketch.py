import time


class Collector:
    def __init__(self):
        self.total = 0.0
        self.stamp = 0.0

    def merge_state(self, state):
        self.total += float(state["total"])
        self.stamp = time.time()
