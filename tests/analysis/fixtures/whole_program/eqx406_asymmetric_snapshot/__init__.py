"""EQX406 fixture: stateful classes reachable from a checkpoint root
with a missing or one-sided to_state/from_state pair."""
