"""A checkpoint root whose attribute graph hides two snapshot holes."""
from dataclasses import dataclass


class Counter:
    """Stateful (mutates self.count outside __init__), no pair at all."""

    def __init__(self):
        self.count = 0

    def bump(self):
        self.count += 1


class Gauge:
    """One-sided: to_state without from_state."""

    def __init__(self):
        self.value = 0.0

    def set_value(self, value):
        self.value = float(value)

    def to_state(self):
        return {"value": self.value}


class Audited:  # eqx: ignore[EQX406]
    """Suppressed on the class line: stateful but deliberately exempt."""

    def __init__(self):
        self.ticks = 0

    def tick(self):
        self.ticks += 1


@dataclass(frozen=True)
class Settings:
    """Frozen config value: exempt without any annotation."""

    limit: int = 8


class Machine:
    """The root itself carries a symmetric pair."""

    def __init__(self):
        self.counter = Counter()
        self.gauge = Gauge()
        self.audited = Audited()
        self.settings = Settings()

    def to_state(self):
        return {"gauge": self.gauge.to_state()}

    def from_state(self, state):
        self.gauge.value = float(state["gauge"]["value"])
