"""The statically-decoded checkpoint-root table for this fixture."""

CHECKPOINT_ROOTS = {
    "machine": "eqx406_asymmetric_snapshot.machine:Machine",
}
