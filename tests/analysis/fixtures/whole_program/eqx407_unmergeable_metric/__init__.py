"""EQX407 fixture: window-merge metric roots with missing folds."""
