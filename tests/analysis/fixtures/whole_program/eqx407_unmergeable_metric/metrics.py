"""Window-merged metric types — one sound, one missing its fold, one
suppressed."""


class Histogram:
    """Carries the full contract: snapshot pair plus the fold."""

    def __init__(self):
        self.buckets = {}

    def observe(self, value):
        self.buckets[value] = self.buckets.get(value, 0) + 1

    def to_state(self):
        return {"buckets": dict(self.buckets)}

    def from_state(self, state):
        self.buckets = dict(state["buckets"])

    def merge_state(self, state):
        for key, count in state["buckets"].items():
            self.buckets[key] = self.buckets.get(key, 0) + count


class Tally:
    """Snapshot pair but no merge_state: the window fold cannot run."""

    def __init__(self):
        self.total = 0

    def add(self, n):
        self.total += n

    def to_state(self):
        return {"total": self.total}

    def from_state(self, state):
        self.total = int(state["total"])


class Exempt:  # eqx: ignore[EQX407]
    """Suppressed on the class line: deliberately outside the fold."""

    def __init__(self):
        self.seen = 0

    def to_state(self):
        return {"seen": self.seen}

    def from_state(self, state):
        self.seen = int(state["seen"])
