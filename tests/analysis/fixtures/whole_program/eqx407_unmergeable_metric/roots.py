"""The statically-decoded window-merge root table for this fixture."""

WINDOW_MERGE_ROOTS = {
    "histogram": "eqx407_unmergeable_metric.metrics:Histogram",
    "tally": "eqx407_unmergeable_metric.metrics:Tally",
    "exempt": "eqx407_unmergeable_metric.metrics:Exempt",
}
