"""Escape-hatch fixture: both audited sinks and def-line suppressions
keep otherwise-firing EQX4xx rules quiet."""
