_REGISTRY = {
    "audited.job": "eqx40x_clean.tasks:audited_job",
    "suppressed.job": "eqx40x_clean.tasks:suppressed_job",
}
