import time

from repro.analysis.annotations import audited


def _now():
    return time.time()


@audited("wall_clock", reason="fixture: deliberately audited sink")
def audited_job(config, seed):
    return {"stamp": time.time(), "seed": seed}


def suppressed_job(config, seed):  # eqx: disable=EQX401
    return {"stamp": _now(), "seed": seed}
