"""Call-graph construction: module discovery, resolution, registry
decoding, audit decoding, digests and the JSON artifact roundtrip."""

from pathlib import Path

from repro.analysis.callgraph import (
    CALLGRAPH_SCHEMA,
    ProgramIndex,
    build_index,
    load_or_build_index,
    tree_digest,
)


def _write_pkg(root: Path, files):
    root.mkdir(parents=True, exist_ok=True)
    for name, source in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


class TestDiscovery:
    def test_module_names_derive_from_root(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {
            "__init__.py": "",
            "a.py": "def f():\n    return 1\n",
            "sub/__init__.py": "",
            "sub/b.py": "def g():\n    return 2\n",
        })
        index = build_index(root)
        assert set(index.modules) == {
            "demo", "demo.a", "demo.sub", "demo.sub.b",
        }
        assert "demo.a.f" in index.functions
        assert "demo.sub.b.g" in index.functions

    def test_digest_is_content_addressed(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {"a.py": "X = 1\n"})
        before = tree_digest(root)
        (root / "a.py").write_text("X = 2\n")
        assert tree_digest(root) != before


class TestResolution:
    def test_direct_and_imported_calls(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {
            "__init__.py": "",
            "util.py": "def helper():\n    return 1\n",
            "main.py": (
                "from demo.util import helper\n\n\n"
                "def run():\n    return helper()\n"
            ),
        })
        index = build_index(root)
        assert index.functions["demo.main.run"].calls == ["demo.util.helper"]

    def test_method_call_through_self(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {
            "m.py": (
                "class C:\n"
                "    def a(self):\n        return self.b()\n"
                "    def b(self):\n        return 1\n"
            ),
        })
        index = build_index(root)
        assert index.functions["demo.m.C.a"].calls == ["demo.m.C.b"]

    def test_local_instance_call(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {
            "m.py": (
                "class C:\n"
                "    def go(self):\n        return 1\n\n\n"
                "def run():\n"
                "    c = C()\n"
                "    return c.go()\n"
            ),
        })
        index = build_index(root)
        calls = index.functions["demo.m.run"].calls
        assert "demo.m.C.go" in calls

    def test_unknown_calls_are_recorded_not_guessed(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {
            "m.py": "def run():\n    return mystery()\n",
        })
        index = build_index(root)
        record = index.functions["demo.m.run"]
        assert record.calls == []
        assert "mystery" in record.unresolved


class TestRegistryDecoding:
    def test_registry_dict_literal(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {
            "jobs.py": '_REGISTRY = {"a.b": "demo.t:fn"}\n',
            "t.py": "def fn(config, seed):\n    return seed\n",
        })
        index = build_index(root)
        assert index.job_registry() == {"a.b": "demo.t:fn"}
        assert index.resolve_target("demo.t:fn").qualname == "demo.t.fn"

    def test_register_job_calls(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {
            "jobs.py": (
                "def register_job(fn_id, target):\n    return fn_id\n\n"
                'register_job("x.y", "demo.t:fn")\n'
            ),
            "t.py": "def fn(config, seed):\n    return seed\n",
        })
        index = build_index(root)
        assert index.job_registry() == {"x.y": "demo.t:fn"}

    def test_kernel_pair_decoding(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {
            "impl.py": (
                "def ref(x, rng):\n    return rng.random()\n\n"
                "def fast(x, rng):\n    return rng.random()\n"
            ),
            "reg.py": (
                "from demo.impl import fast, ref\n\n"
                "def register_kernel(name, reference, fast):\n"
                "    return name\n\n"
                'register_kernel("demo.k", ref, fast)\n'
            ),
        })
        index = build_index(root)
        pairs = index.kernel_pairs()
        assert pairs["demo.k"]["reference"] == "demo.impl.ref"
        assert pairs["demo.k"]["fast"] == "demo.impl.fast"

    def test_rng_traces_match_for_identical_draws(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {
            "impl.py": (
                "def ref(x, rng):\n    return rng.normal(0.0, 1.0)\n\n"
                "def fast(x, rng):\n    return rng.normal(0.0, 1.0)\n"
            ),
        })
        index = build_index(root)
        ref = index.functions["demo.impl.ref"]
        fast = index.functions["demo.impl.fast"]
        assert ref.rng_trace == fast.rng_trace
        assert ref.rng_trace == ["rng.normal(0.0, 1.0)"]

    def test_rng_forwarding_is_part_of_the_trace(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {
            "impl.py": (
                "def inner(rng):\n    return rng.random()\n\n"
                "def outer(x, rng):\n    return inner(rng)\n"
            ),
        })
        index = build_index(root)
        assert index.functions["demo.impl.outer"].rng_trace == [
            "inner(...rng...)"
        ]


class TestAuditDecoding:
    def test_audited_decorator_is_decoded(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {
            "m.py": (
                "from repro.analysis.annotations import audited\n\n\n"
                '@audited("wall_clock", reason="test")\n'
                "def f():\n    return 1\n"
            ),
        })
        index = build_index(root)
        assert index.functions["demo.m.f"].audit == ("wall_clock",)

    def test_pure_decorator_is_decoded(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {
            "m.py": (
                "from repro.analysis.annotations import pure\n\n\n"
                "@pure\n"
                "def f():\n    return 1\n"
            ),
        })
        index = build_index(root)
        assert index.functions["demo.m.f"].audit == ("*",)

    def test_unrelated_decorator_is_not_an_audit(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {
            "m.py": (
                "import functools\n\n\n"
                "@functools.lru_cache\n"
                "def f():\n    return 1\n"
            ),
        })
        index = build_index(root)
        assert index.functions["demo.m.f"].audit is None


class TestArtifact:
    def test_jsonable_roundtrip(self, tmp_path):
        root = _write_pkg(tmp_path / "demo", {
            "jobs.py": '_REGISTRY = {"a.b": "demo.t:fn"}\n',
            "t.py": (
                "import time\n\n\n"
                "def fn(config, seed):\n    return time.time()\n"
            ),
        })
        index = build_index(root)
        clone = ProgramIndex.from_jsonable(index.to_jsonable())
        assert clone.digest == index.digest
        assert set(clone.functions) == set(index.functions)
        assert clone.job_registry() == index.job_registry()
        assert (
            clone.functions["demo.t.fn"].effects
            == index.functions["demo.t.fn"].effects
        )

    def test_cache_hit_and_schema(self, tmp_path):
        import json

        root = _write_pkg(tmp_path / "demo", {"a.py": "X = 1\n"})
        cache = tmp_path / "cg"
        _, from_cache = load_or_build_index(root, cache)
        assert not from_cache
        _, from_cache = load_or_build_index(root, cache)
        assert from_cache
        (artifact,) = cache.glob("callgraph_*.json")
        assert json.loads(artifact.read_text())["schema"] == CALLGRAPH_SCHEMA
