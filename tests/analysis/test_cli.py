"""The ``python -m repro analyze`` subcommand and the fixture corpus."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.suite import iter_fixture_artifacts

FIXTURES = Path(__file__).parent / "fixtures"

#: Every error-severity corpus entry and the rule it must trip.
ERROR_FIXTURES = [
    ("oversized_image.py", "EQX201"),
    ("staging_overflow.py", "EQX104"),
    ("missing_barrier.py", "EQX205"),
    ("bad_loop.py", "EQX202"),
]


class TestFixtureCorpus:
    @pytest.mark.parametrize("name,rule_id", ERROR_FIXTURES)
    def test_broken_fixture_fails_the_gate(self, capsys, name, rule_id):
        code = main(["--fixture", str(FIXTURES / name), "--format", "json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        tripped = {d["rule_id"] for d in document["diagnostics"]}
        assert rule_id in tripped

    def test_dead_code_fails_only_the_warning_gate(self, capsys):
        fixture = str(FIXTURES / "dead_code.py")
        assert main(["--fixture", fixture]) == 0
        assert main(["--fixture", fixture, "--fail-on", "warning"]) == 1
        assert "EQX203" in capsys.readouterr().out

    def test_fixture_with_multiple_artifacts(self):
        pairs = list(iter_fixture_artifacts(FIXTURES / "bad_loop.py"))
        assert len(pairs) == 2

    def test_fixture_without_build_is_rejected(self, tmp_path):
        bogus = tmp_path / "nothing.py"
        bogus.write_text("VALUE = 1\n")
        with pytest.raises(ValueError, match="defines no build"):
            list(iter_fixture_artifacts(bogus))


class TestFlags:
    def test_ignore_drops_a_rule(self, capsys):
        fixture = str(FIXTURES / "staging_overflow.py")
        assert main(["--fixture", fixture, "--ignore", "EQX104"]) == 0
        capsys.readouterr()

    def test_text_report_has_summary(self, capsys):
        main(["--fixture", str(FIXTURES / "staging_overflow.py")])
        out = capsys.readouterr().out
        assert "error: EQX104" in out
        assert "analysis:" in out


class TestDefaultSuite:
    """Acceptance: the shipped tree and builtin models analyze clean."""

    def test_codebase_pass_is_clean(self, capsys):
        assert main(["--skip-programs"]) == 0
        capsys.readouterr()

    def test_full_suite_has_zero_errors(self, capsys):
        code = main(["--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        assert document["counts"]["error"] == 0
