"""The ``python -m repro analyze`` subcommand and the fixture corpus."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.suite import iter_fixture_artifacts

FIXTURES = Path(__file__).parent / "fixtures"

#: Every error-severity corpus entry and the rule it must trip.
ERROR_FIXTURES = [
    ("oversized_image.py", "EQX201"),
    ("staging_overflow.py", "EQX104"),
    ("missing_barrier.py", "EQX205"),
    ("bad_loop.py", "EQX202"),
]


class TestFixtureCorpus:
    @pytest.mark.parametrize("name,rule_id", ERROR_FIXTURES)
    def test_broken_fixture_fails_the_gate(self, capsys, name, rule_id):
        code = main(["--fixture", str(FIXTURES / name), "--format", "json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        tripped = {d["rule_id"] for d in document["diagnostics"]}
        assert rule_id in tripped

    def test_dead_code_fails_only_the_warning_gate(self, capsys):
        fixture = str(FIXTURES / "dead_code.py")
        assert main(["--fixture", fixture]) == 0
        assert main(["--fixture", fixture, "--fail-on", "warning"]) == 1
        assert "EQX203" in capsys.readouterr().out

    def test_fixture_with_multiple_artifacts(self):
        pairs = list(iter_fixture_artifacts(FIXTURES / "bad_loop.py"))
        assert len(pairs) == 2

    def test_fixture_without_build_is_rejected(self, tmp_path):
        bogus = tmp_path / "nothing.py"
        bogus.write_text("VALUE = 1\n")
        with pytest.raises(ValueError, match="defines no build"):
            list(iter_fixture_artifacts(bogus))


class TestFlags:
    def test_ignore_drops_a_rule(self, capsys):
        fixture = str(FIXTURES / "staging_overflow.py")
        assert main(["--fixture", fixture, "--ignore", "EQX104"]) == 0
        capsys.readouterr()

    def test_text_report_has_summary(self, capsys):
        main(["--fixture", str(FIXTURES / "staging_overflow.py")])
        out = capsys.readouterr().out
        assert "error: EQX104" in out
        assert "analysis:" in out


class TestDefaultSuite:
    """Acceptance: the shipped tree and builtin models analyze clean."""

    def test_codebase_pass_is_clean(self, capsys):
        assert main(["--skip-programs"]) == 0
        capsys.readouterr()

    def test_full_suite_has_zero_errors(self, capsys):
        code = main(["--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        assert document["counts"]["error"] == 0


class TestWholeProgramMode:
    BROKEN = FIXTURES / "whole_program" / "eqx401_nondet_job"

    def test_real_tree_is_clean_with_coverage_floor(self, capsys):
        code = main([
            "whole-program", "--min-jobs", "3", "--min-kernels", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "jobs covered:" in out
        assert "kernel pairs covered:" in out

    def test_json_document_carries_coverage(self, capsys):
        code = main(["whole-program", "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        assert document["schema"] == "repro.analysis/diagnostics/v1"
        coverage = document["coverage"]
        assert coverage["jobs_covered"] == len(coverage["jobs"])
        assert coverage["kernels_covered"] == len(coverage["kernels"])

    def test_broken_fixture_fails_the_gate(self, capsys):
        code = main(["whole-program", str(self.BROKEN), "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert {d["rule_id"] for d in document["diagnostics"]} == {"EQX401"}

    def test_coverage_gate_failure_is_eqx404(self, capsys):
        code = main([
            "whole-program", str(self.BROKEN),
            "--ignore", "EQX401", "--min-jobs", "99",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "EQX404" in out
        assert "coverage gate" in out

    def test_cache_dir_round_trip(self, capsys, tmp_path):
        cache = str(tmp_path / "cg")
        assert main([
            "whole-program", str(self.BROKEN), "--cache-dir", cache,
        ]) == 1
        capsys.readouterr()
        assert main([
            "whole-program", str(self.BROKEN), "--cache-dir", cache,
        ]) == 1
        assert "cached call graph" in capsys.readouterr().out
