"""AST lint rules: violating and clean sources per rule, suppression."""

from repro.analysis.codebase_linter import lint_source
from repro.analysis.diagnostics import Severity
from repro.analysis.suite import lint_repository

SIM_PATH = "src/repro/sim/engine.py"
CORE_PATH = "src/repro/core/dispatcher.py"
ARITH_PATH = "src/repro/arith/bfp.py"
EVAL_PATH = "src/repro/eval/fig9.py"


def _ids(diags):
    return [d.rule_id for d in diags]


class TestSyntaxError:
    def test_eqx300(self):
        diags = lint_source("def broken(:\n", path=SIM_PATH)
        assert _ids(diags) == ["EQX300"]
        assert diags[0].severity is Severity.ERROR


class TestDtypeLeak:
    LEAKY = "import numpy as np\n\nACC = np.float64(0.0)\n"

    def test_eqx301_outside_arith(self):
        diags = lint_source(self.LEAKY, path=CORE_PATH)
        assert "EQX301" in _ids(diags)
        assert diags[0].location.line == 3

    def test_arith_is_the_quantization_boundary(self):
        assert lint_source(self.LEAKY, path=ARITH_PATH) == []

    def test_kernels_package_shares_the_boundary(self):
        """The registered bfp kernel pairs are arith's math, moved."""
        path = "src/repro/kernels/fast_bfp.py"
        assert lint_source(self.LEAKY, path=path) == []

    def test_float32_is_fine(self):
        clean = "import numpy as np\n\nACC = np.float32(0.0)\n"
        assert lint_source(clean, path=CORE_PATH) == []


class TestSuppression:
    def test_targeted_suppression(self):
        source = (
            "import numpy as np\n\n"
            "ACC = np.float64(0.0)  # eqx: ignore[EQX301]\n"
        )
        assert lint_source(source, path=CORE_PATH) == []

    def test_blanket_suppression(self):
        source = "import numpy as np\n\nACC = np.float64(0.0)  # eqx: ignore\n"
        assert lint_source(source, path=CORE_PATH) == []

    def test_wrong_id_does_not_suppress(self):
        source = (
            "import numpy as np\n\n"
            "ACC = np.float64(0.0)  # eqx: ignore[EQX304]\n"
        )
        assert "EQX301" in _ids(lint_source(source, path=CORE_PATH))

    def test_disable_alias_targeted(self):
        source = (
            "import numpy as np\n\n"
            "ACC = np.float64(0.0)  # eqx: disable=EQX301\n"
        )
        assert lint_source(source, path=CORE_PATH) == []

    def test_disable_alias_blanket(self):
        source = "import numpy as np\n\nACC = np.float64(0.0)  # eqx: disable\n"
        assert lint_source(source, path=CORE_PATH) == []

    MULTI = (
        "import time\n"
        "import numpy as np\n\n"
        "X = np.float64(time.time()){comment}\n"
    )

    def test_multi_rule_line_partial_suppression(self):
        source = self.MULTI.format(comment="  # eqx: disable=EQX301")
        assert _ids(lint_source(source, path=SIM_PATH)) == ["EQX302"]

    def test_multi_rule_line_full_suppression(self):
        source = self.MULTI.format(comment="  # eqx: disable=EQX301,EQX302")
        assert lint_source(source, path=SIM_PATH) == []

    def test_multi_rule_line_unsuppressed(self):
        source = self.MULTI.format(comment="")
        assert _ids(lint_source(source, path=SIM_PATH)) == ["EQX301", "EQX302"]


class TestNondeterminism:
    def test_eqx302_wall_clock(self):
        source = "import time\n\n\ndef now():\n    return time.time()\n"
        assert "EQX302" in _ids(lint_source(source, path=SIM_PATH))

    def test_wall_clock_warns_outside_deterministic_packages(self):
        source = "import time\n\n\ndef now():\n    return time.time()\n"
        diags = lint_source(source, path=EVAL_PATH)
        assert _ids(diags) == ["EQX302"]
        assert diags[0].severity is Severity.WARNING

    def test_wall_clock_allowed_in_audited_modules(self):
        source = "import time\n\n\ndef now():\n    return time.time()\n"
        for path in (
            "src/repro/exec/bench.py",
            "src/repro/obs/profile.py",
            "src/repro/exec/tasks.py",
            "src/repro/__main__.py",
        ):
            assert lint_source(source, path=path) == []

    def test_uuid_error_inside_warning_outside(self):
        source = "import uuid\n\nRUN_ID = uuid.uuid4()\n"
        strict = lint_source(source, path=SIM_PATH)
        assert _ids(strict) == ["EQX302"]
        assert strict[0].severity is Severity.ERROR
        loose = lint_source(source, path=EVAL_PATH)
        assert _ids(loose) == ["EQX302"]
        assert loose[0].severity is Severity.WARNING

    def test_bare_uuid4_import_is_caught(self):
        source = "from uuid import uuid4\n\nRUN_ID = uuid4()\n"
        assert "EQX302" in _ids(lint_source(source, path=EVAL_PATH))

    def test_unseeded_rng_stays_scoped_to_deterministic_packages(self):
        # Tree-wide the extension covers clocks and uuids only: kernel
        # implementations legitimately default an absent rng argument
        # with np.random.default_rng().
        source = "import numpy as np\n\nRNG = np.random.default_rng()\n"
        assert lint_source(source, path=EVAL_PATH) == []

    def test_eqx302_unseeded_generator(self):
        source = "import numpy as np\n\nRNG = np.random.default_rng()\n"
        assert "EQX302" in _ids(lint_source(source, path=SIM_PATH))

    def test_seeded_generator_is_deterministic(self):
        source = "import numpy as np\n\nRNG = np.random.default_rng(42)\n"
        assert lint_source(source, path=SIM_PATH) == []

    def test_eqx302_global_rng_state(self):
        source = "import numpy as np\n\nX = np.random.rand(3)\n"
        assert "EQX302" in _ids(lint_source(source, path=SIM_PATH))


class TestSwallowedException:
    def test_eqx303_bare_except(self):
        source = "try:\n    x = 1\nexcept:\n    x = 2\n"
        assert "EQX303" in _ids(lint_source(source, path=SIM_PATH))

    def test_eqx303_broad_noop_handler(self):
        source = "try:\n    x = 1\nexcept Exception:\n    pass\n"
        assert "EQX303" in _ids(lint_source(source, path=SIM_PATH))

    def test_broad_handler_with_real_body_is_fine(self):
        source = "try:\n    x = 1\nexcept Exception as exc:\n    raise exc\n"
        assert lint_source(source, path=SIM_PATH) == []

    def test_narrow_noop_handler_is_fine(self):
        source = "try:\n    x = 1\nexcept ValueError:\n    pass\n"
        assert lint_source(source, path=SIM_PATH) == []


class TestUnusedImport:
    def test_eqx304(self):
        diags = lint_source("import os\n\nVALUE = 1\n", path=SIM_PATH)
        assert _ids(diags) == ["EQX304"]
        assert diags[0].severity is Severity.WARNING
        assert diags[0].location.line == 1

    def test_used_import_is_fine(self):
        assert lint_source("import os\n\nSEP = os.sep\n", path=SIM_PATH) == []

    def test_string_annotation_counts_as_use(self):
        source = 'import os\n\n\ndef f(p: "os.PathLike") -> None:\n    return\n'
        assert lint_source(source, path=SIM_PATH) == []

    def test_init_reexports_are_exempt(self):
        source = "from repro.sim.engine import Simulator\n"
        assert lint_source(source, path="src/repro/sim/__init__.py") == []


class TestDirectPercentile:
    _SOURCE = (
        "import numpy as np\n"
        "p99 = np.percentile([1.0, 2.0], 99)\n"
    )

    def test_eqx306_outside_the_stats_layer(self):
        diags = lint_source(self._SOURCE, path=EVAL_PATH)
        assert _ids(diags) == ["EQX306"]
        assert diags[0].location.line == 2

    def test_eqx306_module_alias(self):
        source = "import numpy\np = numpy.percentile([1.0], 50)\n"
        diags = lint_source(source, path=CORE_PATH)
        assert "EQX306" in _ids(diags)

    def test_obs_package_implements_the_sanctioned_path(self):
        diags = lint_source(self._SOURCE, path="src/repro/obs/sketch.py")
        assert "EQX306" not in _ids(diags)

    def test_sim_stats_is_exempt(self):
        diags = lint_source(self._SOURCE, path="src/repro/sim/stats.py")
        assert "EQX306" not in _ids(diags)

    def test_other_numpy_calls_unflagged(self):
        source = "import numpy as np\nm = np.mean([1.0, 2.0])\n"
        assert "EQX306" not in _ids(lint_source(source, path=EVAL_PATH))

    def test_suppression(self):
        source = (
            "import numpy as np\n"
            "p = np.percentile([1.0], 50)  # eqx: ignore[EQX306]\n"
        )
        assert _ids(lint_source(source, path=EVAL_PATH)) == []


class TestKernelImplImport:
    def test_eqx308_import_of_impl_module(self):
        source = "import repro.kernels.ref_bfp as ref\n\nQ = ref.quantize\n"
        diags = lint_source(source, path=EVAL_PATH)
        assert "EQX308" in _ids(diags)
        assert diags[0].location.line == 1

    def test_eqx308_from_impl_module(self):
        source = "from repro.kernels.fast_bfp import matmul\n\nM = matmul\n"
        assert "EQX308" in _ids(lint_source(source, path=CORE_PATH))

    def test_eqx308_impl_module_out_of_package(self):
        source = "from repro.kernels import ref_systolic\n\nR = ref_systolic\n"
        assert "EQX308" in _ids(lint_source(source, path=EVAL_PATH))

    def test_registry_api_is_sanctioned(self):
        source = (
            "from repro.kernels import dispatch, set_backend\n\n"
            "PAIR = (dispatch, set_backend)\n"
        )
        assert "EQX308" not in _ids(lint_source(source, path=EVAL_PATH))

    def test_kernels_package_registers_the_pairs(self):
        source = "from repro.kernels.ref_bfp import quantize\n\nQ = quantize\n"
        path = "src/repro/kernels/__init__.py"
        assert lint_source(source, path=path) == []

    def test_tests_may_reach_implementations(self):
        source = "from repro.kernels.fast_bfp import matmul\n\nM = matmul\n"
        path = "tests/kernels/test_parity_fuzz.py"
        assert "EQX308" not in _ids(lint_source(source, path=path))

    def test_suppression(self):
        source = (
            "import repro.kernels.ref_bfp as ref  # eqx: ignore[EQX308]\n\n"
            "Q = ref.quantize\n"
        )
        assert "EQX308" not in _ids(lint_source(source, path=EVAL_PATH))


class TestDirectHeapq:
    def test_eqx309_plain_import(self):
        source = "import heapq\n\nH = heapq.heappush\n"
        diags = lint_source(source, path=CORE_PATH)
        assert "EQX309" in _ids(diags)

    def test_eqx309_from_import(self):
        source = "from heapq import heappush, heappop\n\nH = (heappush, heappop)\n"
        assert "EQX309" in _ids(lint_source(source, path=EVAL_PATH))

    def test_sim_package_owns_the_heap(self):
        source = "import heapq\n\nH = heapq.heappush\n"
        assert "EQX309" not in _ids(
            lint_source(source, path="src/repro/sim/engine.py")
        )

    def test_tests_may_build_reference_heaps(self):
        source = "import heapq\n\nH = heapq.heappush\n"
        assert "EQX309" not in _ids(
            lint_source(source, path="tests/sim/test_batch_drain.py")
        )

    def test_other_imports_unflagged(self):
        source = "import heapq_like_lib\n\nL = heapq_like_lib\n"
        assert "EQX309" not in _ids(lint_source(source, path=CORE_PATH))

    def test_suppression(self):
        source = "import heapq  # eqx: ignore[EQX309]\n\nH = heapq.heappush\n"
        assert "EQX309" not in _ids(lint_source(source, path=CORE_PATH))


class TestUnkeyedServeRng:
    """EQX310: ambient random sources are banned inside repro.serve —
    the fleet matrix promises byte-identical reports for any --jobs
    value, so every draw must come from a seeded, keyed substream."""

    SERVE_PATH = "src/repro/serve/router.py"

    def test_import_and_use_of_random_flagged(self):
        source = "import random\n\nx = random.random()\n"
        diags = lint_source(source, path=self.SERVE_PATH)
        assert _ids(diags) == ["EQX310", "EQX310"]
        assert [d.location.line for d in diags] == [1, 3]

    def test_from_random_import_flagged(self):
        source = "from random import choice\n\nx = choice([1, 2])\n"
        assert "EQX310" in _ids(lint_source(source, path=self.SERVE_PATH))

    def test_ambient_numpy_random_attr_flagged_once(self):
        source = "import numpy as np\n\nnp.random.shuffle([1, 2])\n"
        diags = lint_source(source, path=self.SERVE_PATH)
        # One report per attribute chain, not one per sub-attribute.
        assert _ids(diags) == ["EQX310"]

    def test_numpy_random_submodule_import_flagged(self):
        source = "from numpy import random\n\nrandom.shuffle([1])\n"
        assert "EQX310" in _ids(lint_source(source, path=self.SERVE_PATH))

    def test_unseeded_default_rng_flagged(self):
        source = "import numpy as np\n\nrng = np.random.default_rng()\n"
        assert _ids(lint_source(source, path=self.SERVE_PATH)) == ["EQX310"]

    def test_seeded_default_rng_is_the_sanctioned_path(self):
        source = (
            "import zlib\n\n"
            "import numpy as np\n\n"
            'rng = np.random.default_rng([7, zlib.crc32(b"x")])\n'
        )
        assert lint_source(source, path=self.SERVE_PATH) == []

    def test_rule_is_inert_outside_serve(self):
        source = "import random\n\nx = random.random()\n"
        assert "EQX310" not in _ids(lint_source(source, path=EVAL_PATH))

    def test_suppression(self):
        source = (
            "import random  # eqx: ignore[EQX310]\n\n"
            "x = random.random()  # eqx: ignore[EQX310]\n"
        )
        assert lint_source(source, path=self.SERVE_PATH) == []


class TestOrdering:
    def test_diagnostics_sorted_by_line(self):
        source = (
            "import os\n"
            "import numpy as np\n"
            "\n"
            "ACC = np.float64(0.0)\n"
        )
        diags = lint_source(source, path=CORE_PATH)
        assert _ids(diags) == ["EQX304", "EQX301"]
        assert [d.location.line for d in diags] == [1, 4]


class TestRepositoryIsClean:
    def test_no_errors_in_tree(self):
        """The shipped package must lint clean at error severity."""
        errors = [
            d for d in lint_repository() if d.severity >= Severity.ERROR
        ]
        assert errors == [], "\n".join(d.render() for d in errors)
