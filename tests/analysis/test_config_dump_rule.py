"""EQX307: ad-hoc json.dumps of configs outside the canonicalizer."""

from repro.analysis.codebase_linter import lint_source

EVAL_PATH = "src/repro/eval/fig9.py"
CANONICAL_PATH = "src/repro/exec/canonical.py"
REPORT_PATH = "src/repro/obs/report.py"


def _ids(diags):
    return [d.rule_id for d in diags]


class TestAdhocConfigDump:
    DUMPING = (
        "import json\n\n"
        "def key(config):\n"
        "    return json.dumps(config)\n"
    )

    def test_eqx307_on_config_dump(self):
        diags = lint_source(self.DUMPING, path=EVAL_PATH)
        assert "EQX307" in _ids(diags)
        assert diags[-1].location.line == 4

    def test_json_dump_variant_flagged(self):
        source = (
            "import json\n\n"
            "def save(cfg, handle):\n"
            "    json.dump(cfg, handle)\n"
        )
        assert "EQX307" in _ids(lint_source(source, path=EVAL_PATH))

    def test_attribute_access_flagged(self):
        source = (
            "import json\n\n"
            "def key(point):\n"
            "    return json.dumps(point.config)\n"
        )
        assert "EQX307" in _ids(lint_source(source, path=EVAL_PATH))

    def test_non_config_dump_is_fine(self):
        source = (
            "import json\n\n"
            "def save(report):\n"
            "    return json.dumps(report)\n"
        )
        assert "EQX307" not in _ids(lint_source(source, path=EVAL_PATH))

    def test_canonicalizer_is_exempt(self):
        assert "EQX307" not in _ids(
            lint_source(self.DUMPING, path=CANONICAL_PATH)
        )

    def test_report_serializer_is_exempt(self):
        assert "EQX307" not in _ids(
            lint_source(self.DUMPING, path=REPORT_PATH)
        )

    def test_suppression(self):
        source = (
            "import json\n\n"
            "def key(config):\n"
            "    return json.dumps(config)  # eqx: ignore[EQX307]\n"
        )
        assert "EQX307" not in _ids(lint_source(source, path=EVAL_PATH))

    def test_shipped_tree_is_clean(self):
        """The real src/repro tree must carry no EQX307 diagnostics."""
        from pathlib import Path

        from repro.analysis.codebase_linter import lint_tree

        import repro

        root = Path(repro.__file__).parent
        diags = [d for d in lint_tree(root) if d.rule_id == "EQX307"]
        assert diags == []
