"""Diagnostics core: severities, rendering, gating, the rule catalog."""

import json

import pytest

from repro.analysis import rules
from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    count_by_severity,
    errors,
    exit_code,
    max_severity,
    render_json,
    render_text,
)


def _diag(severity, rule_id="EQX999", **loc):
    return Diagnostic(
        rule_id=rule_id, severity=severity, message="msg", location=Location(**loc)
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_parse(self):
        assert Severity.parse("warning") is Severity.WARNING
        assert Severity.parse("ERROR") is Severity.ERROR

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")

    def test_str(self):
        assert str(Severity.ERROR) == "error"


class TestLocation:
    def test_file_and_line(self):
        assert Location(file="a.py", line=3).render() == "a.py:3"

    def test_file_only(self):
        assert Location(file="a.py").render() == "a.py"

    def test_object_path(self):
        loc = Location(obj="training:lstm/step[3]/job[0]")
        assert loc.render() == "training:lstm/step[3]/job[0]"

    def test_unknown(self):
        assert Location().render() == "<unknown>"


class TestDiagnostic:
    def test_render(self):
        diag = _diag(Severity.ERROR, rule_id="EQX104", obj="training:lstm")
        assert diag.render() == "error: EQX104 at training:lstm: msg"

    def test_to_dict(self):
        diag = _diag(Severity.WARNING, rule_id="EQX106", file="x.py", line=7)
        assert diag.to_dict() == {
            "rule_id": "EQX106",
            "severity": "warning",
            "message": "msg",
            "file": "x.py",
            "line": 7,
            "object": None,
        }


class TestBatchHelpers:
    def test_count_by_severity(self):
        batch = [_diag(Severity.ERROR), _diag(Severity.WARNING), _diag(Severity.ERROR)]
        assert count_by_severity(batch) == {"error": 2, "warning": 1, "info": 0}

    def test_max_severity(self):
        assert max_severity([]) is None
        batch = [_diag(Severity.INFO), _diag(Severity.WARNING)]
        assert max_severity(batch) is Severity.WARNING

    def test_errors_filter(self):
        batch = [_diag(Severity.WARNING), _diag(Severity.ERROR)]
        assert [d.severity for d in errors(batch)] == [Severity.ERROR]

    def test_exit_code_default_gate(self):
        assert exit_code([]) == 0
        assert exit_code([_diag(Severity.WARNING)]) == 0
        assert exit_code([_diag(Severity.ERROR)]) == 1

    def test_exit_code_warning_gate(self):
        batch = [_diag(Severity.WARNING)]
        assert exit_code(batch, fail_on=Severity.WARNING) == 1
        assert exit_code([_diag(Severity.INFO)], fail_on=Severity.WARNING) == 0


class TestRenderers:
    def test_text_lines_and_summary(self):
        batch = [_diag(Severity.ERROR, rule_id="EQX104", obj="p")]
        text = render_text(batch)
        assert "error: EQX104 at p: msg" in text
        assert text.endswith("analysis: 1 error, 0 warnings, 0 infos")

    def test_text_pluralization(self):
        batch = [_diag(Severity.WARNING), _diag(Severity.WARNING)]
        assert render_text(batch).endswith("analysis: 0 errors, 2 warnings, 0 infos")

    def test_json_round_trip(self):
        batch = [_diag(Severity.ERROR, rule_id="EQX104", obj="p")]
        document = json.loads(render_json(batch))
        assert document["counts"]["error"] == 1
        assert document["diagnostics"][0]["rule_id"] == "EQX104"
        assert document["diagnostics"][0]["object"] == "p"

    def test_json_is_schemad_and_canonical(self):
        batch = [_diag(Severity.ERROR, rule_id="EQX104", obj="p")]
        text = render_json(batch)
        assert json.loads(text)["schema"] == "repro.analysis/diagnostics/v1"
        # canonical: sorted keys, compact separators — byte-stable, so
        # the document itself can be checksummed like any artifact
        document = json.loads(text)
        assert text == json.dumps(
            document, sort_keys=True, separators=(",", ":")
        )

    def test_json_extra_keys_merge_at_top_level(self):
        text = render_json([], extra={"coverage": {"jobs_covered": 3}})
        assert json.loads(text)["coverage"] == {"jobs_covered": 3}

    def test_eqx4xx_band_is_cataloged(self):
        ids = {r.rule_id for r in rules.catalog()}
        assert {"EQX401", "EQX402", "EQX403", "EQX404", "EQX405"} <= ids
        for rule_id in ("EQX401", "EQX402", "EQX403", "EQX404", "EQX405"):
            assert rules.rule(rule_id).severity is Severity.ERROR


class TestRuleCatalog:
    def test_catalog_bands(self):
        ids = [r.rule_id for r in rules.catalog()]
        assert ids == sorted(ids)
        assert all(i.startswith("EQX") for i in ids)
        assert {"EQX101", "EQX104", "EQX201", "EQX205", "EQX301"} <= set(ids)

    def test_lookup(self):
        assert rules.rule("EQX104").name == "staging-overflow"
        assert rules.rule("EQX104").severity is Severity.ERROR
        assert rules.is_known_rule("EQX301")
        assert not rules.is_known_rule("EQX999")
        with pytest.raises(KeyError, match="EQX999"):
            rules.rule("EQX999")

    def test_diagnostic_builder_defaults(self):
        diag = rules.diagnostic(rules.TILING_WASTE, "padded", obj="step")
        assert diag.rule_id == "EQX106"
        assert diag.severity is Severity.WARNING
        assert diag.location.obj == "step"

    def test_diagnostic_builder_severity_override(self):
        diag = rules.diagnostic(
            rules.TILING_WASTE, "padded", obj="step", severity=Severity.ERROR
        )
        assert diag.severity is Severity.ERROR
