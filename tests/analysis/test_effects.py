"""The effect lattice: per-function source detection and the
interprocedural fixed point with witness chains."""

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.effects import (
    EFFECTS,
    NONDETERMINISM_EFFECTS,
    STATE_EFFECTS,
    detect_effects,
    propagate,
)

IMPORTS = {
    "time": "time",
    "os": "os",
    "np": "numpy",
    "uuid": "uuid",
    "threading": "threading",
    "subprocess": "subprocess",
}


def _detect(body: str) -> Dict[str, Tuple[int, str]]:
    tree = ast.parse(f"def f():\n{body}")
    return detect_effects(tree.body[0], IMPORTS)


class TestDetection:
    def test_wall_clock(self):
        assert "wall_clock" in _detect("    return time.time()")
        assert "wall_clock" in _detect("    time.sleep(1)")

    def test_unseeded_rng(self):
        assert "unseeded_rng" in _detect(
            "    return np.random.default_rng()"
        )
        assert "unseeded_rng" in _detect("    return uuid.uuid4()")

    def test_seeded_rng_is_clean(self):
        assert _detect("    return np.random.default_rng(42)") == {}

    def test_env_read_call_and_subscript(self):
        assert "env_read" in _detect("    return os.getenv('X')")
        assert "env_read" in _detect("    return os.environ['X']")

    def test_id_value(self):
        assert "id_value" in _detect("    return id(object())")

    def test_thread(self):
        assert "thread" in _detect(
            "    return threading.Thread(target=print)"
        )

    def test_set_iteration_order(self):
        assert "set_order" in _detect(
            "    return [x for x in {1, 2, 3}]"
        )
        assert "set_order" in _detect(
            "    for x in set(range(3)):\n        pass"
        )

    def test_list_iteration_is_clean(self):
        assert _detect("    return [x for x in [1, 2, 3]]") == {}

    def test_fs_order_and_sorted_neutralization(self):
        assert "fs_order" in _detect("    return list(path.iterdir())")
        assert _detect("    return sorted(path.iterdir())") == {}

    def test_io(self):
        assert "io" in _detect("    return open('x').read()")
        assert "io" in _detect("    return path.read_text()")

    def test_process(self):
        assert "process" in _detect("    return subprocess.run(['ls'])")
        assert "process" in _detect("    os._exit(1)")

    def test_first_occurrence_wins(self):
        found = _detect(
            "    a = time.time()\n    b = time.monotonic()\n    return a + b"
        )
        assert found["wall_clock"] == (2, "time.time()")

    def test_vocabulary_is_partitioned(self):
        assert NONDETERMINISM_EFFECTS.isdisjoint(STATE_EFFECTS)
        assert (NONDETERMINISM_EFFECTS | STATE_EFFECTS) == set(EFFECTS)


@dataclass
class _Fn:
    """FunctionRecord-shaped stub (calls/effects/audit are the
    propagation contract)."""

    calls: List[str] = field(default_factory=list)
    effects: Dict[str, Tuple[int, str]] = field(default_factory=dict)
    audit: Optional[Tuple[str, ...]] = None


class TestPropagation:
    def test_effects_flow_up_call_chains(self):
        summary = propagate({
            "m.a": _Fn(calls=["m.b"]),
            "m.b": _Fn(calls=["m.c"]),
            "m.c": _Fn(effects={"wall_clock": (7, "time.time()")}),
        })
        assert summary.effects_of("m.a") == {"wall_clock"}
        assert summary.effects_of("m.b") == {"wall_clock"}

    def test_witness_renders_the_chain_to_the_source(self):
        summary = propagate({
            "m.a": _Fn(calls=["m.b"]),
            "m.b": _Fn(effects={"wall_clock": (7, "time.time()")}),
        })
        witness = summary.witness("m.a", "wall_clock")
        assert witness == "m.a -> m.b: time.time() at line 7"

    def test_audit_silences_the_audited_effect_only(self):
        summary = propagate({
            "m.a": _Fn(calls=["m.b"]),
            "m.b": _Fn(
                effects={
                    "wall_clock": (1, "time.time()"),
                    "env_read": (2, "os.environ"),
                },
                audit=("wall_clock",),
            ),
        })
        assert summary.effects_of("m.a") == {"env_read"}

    def test_pure_marker_silences_everything(self):
        summary = propagate({
            "m.a": _Fn(calls=["m.b"]),
            "m.b": _Fn(
                effects={
                    "wall_clock": (1, "time.time()"),
                    "io": (2, "open()"),
                },
                audit=("*",),
            ),
        })
        assert summary.effects_of("m.a") == set()
        assert summary.effects_of("m.b") == set()

    def test_audit_does_not_mask_the_callers_own_sources(self):
        summary = propagate({
            "m.a": _Fn(
                calls=["m.b"],
                effects={"io": (3, "open()")},
            ),
            "m.b": _Fn(
                effects={"wall_clock": (1, "time.time()")},
                audit=("*",),
            ),
        })
        assert summary.effects_of("m.a") == {"io"}

    def test_recursion_terminates(self):
        summary = propagate({
            "m.a": _Fn(calls=["m.b"]),
            "m.b": _Fn(
                calls=["m.a"],
                effects={"wall_clock": (1, "time.time()")},
            ),
        })
        assert summary.effects_of("m.a") == {"wall_clock"}

    def test_jsonable_drops_clean_functions(self):
        summary = propagate({
            "m.clean": _Fn(),
            "m.dirty": _Fn(effects={"io": (1, "open()")}),
        })
        assert summary.to_jsonable() == {"m.dirty": ["io"]}
