"""The engines refuse verifier-rejected programs at install time."""

import pytest

from repro.analysis.program_verifier import ProgramVerificationError
from repro.core.dispatcher import InferenceEngine, TrainingEngine
from repro.core.scheduler import InferenceOnlyScheduler, PriorityScheduler
from repro.hw.dram import HBMInterface
from repro.hw.isa import MMUJob, Program, StepProgram
from repro.hw.mmu import MatrixMultiplyUnit
from repro.hw.simd import SIMDUnit
from repro.models.compiler import TileCompiler


def _datapath(sim, config):
    return MatrixMultiplyUnit(sim, config), SIMDUnit(sim, config)


def _overcommitted_program(config):
    job = MMUJob(
        cycles=10.0, rows=4, macs=100.0 * config.total_alus, utilization=0.9
    )
    return Program(
        name="overcommit",
        steps=[StepProgram(mmu_jobs=[job])],
        rows=4,
        useful_ops_per_row=1.0,
    )


def _staging_overflow_program(config):
    job = MMUJob(
        cycles=1e6,
        rows=4,
        macs=1e6,
        utilization=0.9,
        weight_bytes=2.0 * config.staging_bytes,
    )
    return Program(
        name="staging_overflow",
        steps=[StepProgram(mmu_jobs=[job])],
        rows=4,
        useful_ops_per_row=1.0,
    )


class TestInferenceInstallGate:
    def test_violating_program_fails_install(self, sim, tiny_config):
        mmu, simd = _datapath(sim, tiny_config)
        with pytest.raises(ProgramVerificationError) as excinfo:
            InferenceEngine(
                sim, tiny_config, mmu, simd,
                _overcommitted_program(tiny_config), InferenceOnlyScheduler(),
            )
        assert any(d.rule_id == "EQX103" for d in excinfo.value.diagnostics)

    def test_verify_false_bypasses_the_gate(self, sim, tiny_config):
        mmu, simd = _datapath(sim, tiny_config)
        engine = InferenceEngine(
            sim, tiny_config, mmu, simd,
            _overcommitted_program(tiny_config), InferenceOnlyScheduler(),
            verify=False,
        )
        assert engine.program.name == "overcommit"

    def test_compiled_program_installs(self, sim, tiny_config, tiny_model):
        compiler = TileCompiler(tiny_config, chunk_us=0.05)
        mmu, simd = _datapath(sim, tiny_config)
        engine = InferenceEngine(
            sim, tiny_config, mmu, simd,
            compiler.compile_inference(tiny_model), InferenceOnlyScheduler(),
        )
        assert engine.batches_completed == 0


class TestTrainingInstallGate:
    def test_staging_violation_fails_install(self, sim, tiny_config):
        mmu, simd = _datapath(sim, tiny_config)
        hbm = HBMInterface(sim, tiny_config)
        with pytest.raises(ProgramVerificationError) as excinfo:
            TrainingEngine(
                sim, tiny_config, mmu, simd, hbm,
                _staging_overflow_program(tiny_config),
                PriorityScheduler(queue_threshold=4),
                inference_queue_size=lambda: 0,
            )
        assert any(d.rule_id == "EQX104" for d in excinfo.value.diagnostics)

    def test_verify_false_bypasses_the_gate(self, sim, tiny_config):
        mmu, simd = _datapath(sim, tiny_config)
        hbm = HBMInterface(sim, tiny_config)
        engine = TrainingEngine(
            sim, tiny_config, mmu, simd, hbm,
            _staging_overflow_program(tiny_config),
            PriorityScheduler(queue_threshold=4),
            inference_queue_size=lambda: 0,
            verify=False,
        )
        assert engine.program.name == "staging_overflow"

    def test_compiled_program_installs(self, sim, tiny_config, tiny_model):
        compiler = TileCompiler(tiny_config, chunk_us=0.05)
        program = compiler.compile_training(
            tiny_model, batch=8, max_stream_bytes=tiny_config.staging_bytes / 2.0
        )
        mmu, simd = _datapath(sim, tiny_config)
        hbm = HBMInterface(sim, tiny_config)
        engine = TrainingEngine(
            sim, tiny_config, mmu, simd, hbm, program,
            PriorityScheduler(queue_threshold=4),
            inference_queue_size=lambda: 0,
        )
        assert engine.jobs_issued == 0
