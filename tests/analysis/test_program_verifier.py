"""Program verifier: one violating and one clean case per rule."""

from dataclasses import dataclass

import pytest

from repro.analysis.program_verifier import (
    ProgramVerificationError,
    raise_on_errors,
    verify,
    verify_image,
    verify_program,
)
from repro.hw.instructions import (
    Instruction,
    InstructionImage,
    Opcode,
    assemble_inference,
    assemble_training,
)
from repro.hw.isa import DRAMRequest, MMUJob, Program, SIMDJob, StepProgram
from repro.models.compiler import TileCompiler


@dataclass
class _RawJob:
    """MMUJob stand-in without construction-time validation, so the
    verifier's defensive field checks can be exercised."""

    cycles: float
    rows: int
    macs: float
    utilization: float
    weight_bytes: float = 0.0
    instruction_count: int = 1


def _job(config, cycles=100.0, rows=4, utilization=0.9, weight_bytes=0.0):
    return MMUJob(
        cycles=cycles,
        rows=rows,
        macs=0.5 * cycles * config.total_alus,
        utilization=utilization,
        weight_bytes=weight_bytes,
    )


def _program(steps, rows=4, name="prog"):
    return Program(name=name, steps=steps, rows=rows, useful_ops_per_row=1.0)


def _ids(diags):
    return [d.rule_id for d in diags]


class TestJobLevelRules:
    def test_clean_program(self, tiny_config):
        program = _program([StepProgram(mmu_jobs=[_job(tiny_config)])])
        assert verify_program(program, tiny_config) == []

    def test_eqx101_no_steps(self, tiny_config):
        assert "EQX101" in _ids(verify_program(_program([]), tiny_config))

    def test_eqx101_step_without_work(self, tiny_config):
        program = _program([StepProgram()])
        diags = verify_program(program, tiny_config)
        assert _ids(diags) == ["EQX101"]
        assert "step[0]" in diags[0].location.obj

    def test_simd_only_step_is_work(self, tiny_config):
        program = _program([StepProgram(simd=SIMDJob(cycles=10.0))])
        assert verify_program(program, tiny_config) == []

    def test_eqx102_negative_job_fields(self, tiny_config):
        bad = _RawJob(cycles=-1.0, rows=4, macs=10.0, utilization=0.5)
        program = _program([StepProgram(mmu_jobs=[bad])])
        assert "EQX102" in _ids(verify_program(program, tiny_config))

    def test_eqx102_utilization_out_of_range(self, tiny_config):
        bad = _RawJob(cycles=1.0, rows=4, macs=10.0, utilization=1.5)
        program = _program([StepProgram(mmu_jobs=[bad])])
        assert "EQX102" in _ids(verify_program(program, tiny_config))

    def test_eqx102_zero_instruction_count(self, tiny_config):
        bad = _RawJob(
            cycles=1.0, rows=4, macs=10.0, utilization=0.5, instruction_count=0
        )
        program = _program([StepProgram(mmu_jobs=[bad])])
        assert "EQX102" in _ids(verify_program(program, tiny_config))

    def test_eqx102_bad_program_rows(self, tiny_config):
        program = _program([StepProgram(mmu_jobs=[_job(tiny_config)])], rows=0)
        assert "EQX102" in _ids(verify_program(program, tiny_config))

    def test_eqx102_negative_simd(self, tiny_config):
        program = _program([StepProgram(simd=SIMDJob(cycles=-1.0))])
        assert "EQX102" in _ids(verify_program(program, tiny_config))

    def test_eqx102_negative_dram_request(self, tiny_config):
        step = StepProgram(dram=[DRAMRequest(bytes=-10.0, kind="train_weights")])
        assert "EQX102" in _ids(verify_program(_program([step]), tiny_config))

    def test_eqx102_unknown_dram_kind(self, tiny_config):
        step = StepProgram(dram=[DRAMRequest(bytes=10.0, kind="mystery")])
        assert "EQX102" in _ids(verify_program(_program([step]), tiny_config))

    def test_eqx103_datapath_overcommit(self, tiny_config):
        bad = MMUJob(
            cycles=10.0,
            rows=4,
            macs=100.0 * tiny_config.total_alus,
            utilization=0.9,
        )
        program = _program([StepProgram(mmu_jobs=[bad])])
        assert "EQX103" in _ids(verify_program(program, tiny_config))

    def test_eqx103_peak_rate_is_legal(self, tiny_config):
        job = MMUJob(
            cycles=10.0, rows=4, macs=10.0 * tiny_config.total_alus, utilization=0.9
        )
        program = _program([StepProgram(mmu_jobs=[job])])
        assert verify_program(program, tiny_config) == []

    def test_eqx104_staging_overflow(self, tiny_config):
        over = 2.0 * tiny_config.staging_bytes
        program = _program(
            [StepProgram(mmu_jobs=[_job(tiny_config, weight_bytes=over)])]
        )
        assert "EQX104" in _ids(verify_program(program, tiny_config))

    def test_eqx104_counts_stash_reloads(self, tiny_config):
        step = StepProgram(
            mmu_jobs=[_job(tiny_config)],
            dram=[DRAMRequest(bytes=2.0 * tiny_config.staging_bytes, kind="stash_in")],
        )
        assert "EQX104" in _ids(verify_program(_program([step]), tiny_config))

    def test_eqx105_no_double_buffer(self, tiny_config):
        tight = 0.75 * tiny_config.staging_bytes
        program = _program(
            [StepProgram(mmu_jobs=[_job(tiny_config, weight_bytes=tight)])]
        )
        diags = verify_program(program, tiny_config)
        assert _ids(diags) == ["EQX105"]

    def test_staging_checks_are_per_job(self, tiny_config):
        # Two jobs split one stream: each stages half, which fits.
        each = 0.4 * tiny_config.staging_bytes
        step = StepProgram(
            mmu_jobs=[
                _job(tiny_config, weight_bytes=each),
                _job(tiny_config, weight_bytes=each),
            ]
        )
        assert verify_program(_program([step]), tiny_config) == []

    def test_eqx106_tiling_waste(self, tiny_config):
        program = _program(
            [StepProgram(mmu_jobs=[_job(tiny_config, utilization=0.1)])]
        )
        diags = verify_program(program, tiny_config)
        assert _ids(diags) == ["EQX106"]

    def test_eqx106_threshold_is_tunable(self, tiny_config):
        program = _program(
            [StepProgram(mmu_jobs=[_job(tiny_config, utilization=0.1)])]
        )
        assert verify_program(program, tiny_config, waste_threshold=0.05) == []

    def test_eqx106_reported_once_per_step(self, tiny_config):
        jobs = [_job(tiny_config, utilization=0.1) for _ in range(10)]
        diags = verify_program(_program([StepProgram(mmu_jobs=jobs)]), tiny_config)
        assert _ids(diags) == ["EQX106"]

    def test_eqx107_row_overflow(self, tiny_config):
        program = _program([StepProgram(mmu_jobs=[_job(tiny_config, rows=8)])], rows=4)
        assert "EQX107" in _ids(verify_program(program, tiny_config))


class TestImageRules:
    def test_clean_inference_image(self, tiny_config):
        image = InstructionImage(
            service="inference",
            instructions=[
                Instruction(Opcode.LOOP, (4,)),
                Instruction(Opcode.MATMUL_TILE, (0,)),
                Instruction(Opcode.VECTOR_OP, ()),
                Instruction(Opcode.STORE_OUTPUT, ()),
            ],
        )
        assert verify_image(image, tiny_config) == []

    def test_eqx201_budget(self, tiny_config):
        # 16 B/instruction: 2048 fill the 32 KB buffer exactly.
        fits = InstructionImage(
            service="inference",
            instructions=[Instruction(Opcode.MATMUL_TILE, (0,))] * 2048,
        )
        over = InstructionImage(
            service="inference",
            instructions=[Instruction(Opcode.MATMUL_TILE, (0,))] * 2049,
        )
        assert verify_image(fits, tiny_config) == []
        assert "EQX201" in _ids(verify_image(over, tiny_config))

    def test_eqx201_share_scales_budget(self, tiny_config):
        image = InstructionImage(
            service="inference",
            instructions=[Instruction(Opcode.MATMUL_TILE, (0,))] * 1100,
        )
        assert verify_image(image, tiny_config, share=1.0) == []
        assert "EQX201" in _ids(verify_image(image, tiny_config, share=0.5))

    def test_eqx202_repeat_range(self, tiny_config):
        for repeat in (1, 0, (1 << 16) + 1):
            image = InstructionImage(
                service="inference",
                instructions=[
                    Instruction(Opcode.LOOP, (repeat,)),
                    Instruction(Opcode.MATMUL_TILE, (0,)),
                ],
            )
            assert "EQX202" in _ids(verify_image(image, tiny_config)), repeat

    def test_eqx202_missing_operand(self, tiny_config):
        image = InstructionImage(
            service="inference",
            instructions=[
                Instruction(Opcode.LOOP, ()),
                Instruction(Opcode.MATMUL_TILE, (0,)),
            ],
        )
        assert "EQX202" in _ids(verify_image(image, tiny_config))

    def test_eqx202_nesting_depth(self, tiny_config):
        loops = [Instruction(Opcode.LOOP, (4,))] * 5
        image = InstructionImage(
            service="inference",
            instructions=loops + [Instruction(Opcode.MATMUL_TILE, (0,))],
        )
        assert "EQX202" in _ids(verify_image(image, tiny_config))

    def test_four_deep_nest_is_legal(self, tiny_config):
        loops = [Instruction(Opcode.LOOP, (4,))] * 4
        image = InstructionImage(
            service="inference",
            instructions=loops + [Instruction(Opcode.MATMUL_TILE, (0,))],
        )
        assert verify_image(image, tiny_config) == []

    def test_eqx203_dead_instructions(self, tiny_config):
        image = InstructionImage(
            service="inference",
            instructions=[
                Instruction(Opcode.BARRIER, ()),  # leading
                Instruction(Opcode.MATMUL_TILE, (0,)),
                Instruction(Opcode.BARRIER, ()),
                Instruction(Opcode.BARRIER, ()),  # repeated
                Instruction(Opcode.LOOP, (8,)),
                Instruction(Opcode.BARRIER, ()),  # empty loop body
                Instruction(Opcode.MATMUL_TILE, (0,)),
                Instruction(Opcode.LOOP, (8,)),  # trailing
            ],
        )
        diags = verify_image(image, tiny_config)
        assert _ids(diags).count("EQX203") == 4
        assert all(d.rule_id == "EQX203" for d in diags)

    def test_eqx204_training_matmul_without_load(self, tiny_config):
        image = InstructionImage(
            service="training",
            instructions=[Instruction(Opcode.MATMUL_TILE, (0,))],
        )
        assert "EQX204" in _ids(verify_image(image, tiny_config))

    def test_inference_weights_are_resident(self, tiny_config):
        # The same image is legal for inference: weights live on-chip.
        image = InstructionImage(
            service="inference",
            instructions=[Instruction(Opcode.MATMUL_TILE, (0,))],
        )
        assert verify_image(image, tiny_config) == []

    def test_eqx205_load_after_store(self, tiny_config):
        image = InstructionImage(
            service="training",
            instructions=[
                Instruction(Opcode.LOAD_WEIGHTS, ()),
                Instruction(Opcode.MATMUL_TILE, (0,)),
                Instruction(Opcode.STORE_OUTPUT, ()),
                Instruction(Opcode.LOAD_WEIGHTS, ()),
            ],
        )
        assert "EQX205" in _ids(verify_image(image, tiny_config))

    def test_barrier_fences_the_hazard(self, tiny_config):
        image = InstructionImage(
            service="training",
            instructions=[
                Instruction(Opcode.LOAD_WEIGHTS, ()),
                Instruction(Opcode.MATMUL_TILE, (0,)),
                Instruction(Opcode.STORE_OUTPUT, ()),
                Instruction(Opcode.BARRIER, ()),
                Instruction(Opcode.LOAD_WEIGHTS, ()),
                Instruction(Opcode.MATMUL_TILE, (0,)),
            ],
        )
        assert verify_image(image, tiny_config) == []


class TestRaiseOnErrors:
    def test_raises_with_diagnostics(self, tiny_config):
        diags = verify_program(_program([]), tiny_config)
        with pytest.raises(ProgramVerificationError) as excinfo:
            raise_on_errors(diags)
        assert excinfo.value.diagnostics == diags
        assert "EQX101" in str(excinfo.value)

    def test_warnings_do_not_raise(self, tiny_config):
        program = _program(
            [StepProgram(mmu_jobs=[_job(tiny_config, utilization=0.1)])]
        )
        raise_on_errors(verify_program(program, tiny_config))


class TestDispatch:
    def test_verify_dispatches_program(self, tiny_config):
        program = _program([StepProgram(mmu_jobs=[_job(tiny_config)])])
        assert verify(program, tiny_config) == []

    def test_verify_dispatches_image(self, tiny_config):
        image = InstructionImage(
            service="inference",
            instructions=[Instruction(Opcode.MATMUL_TILE, (0,))],
        )
        assert verify(image, tiny_config) == []

    def test_verify_rejects_other_types(self, tiny_config):
        with pytest.raises(TypeError, match="cannot verify"):
            verify("not a program", tiny_config)


class TestCompiledArtifacts:
    """The real compiler's output must be verifier-clean (no errors)."""

    def test_compiled_inference_program(self, tiny_config, tiny_model):
        compiler = TileCompiler(tiny_config, chunk_us=0.05)
        diags = verify_program(
            compiler.compile_inference(tiny_model), tiny_config, context="inference"
        )
        assert [d for d in diags if d.severity.name == "ERROR"] == []

    def test_compiled_training_program(self, tiny_config, tiny_model):
        compiler = TileCompiler(tiny_config, chunk_us=0.05)
        program = compiler.compile_training(
            tiny_model, batch=8, max_stream_bytes=tiny_config.staging_bytes / 2.0
        )
        diags = verify_program(program, tiny_config, context="training")
        assert [d for d in diags if d.severity.name == "ERROR"] == []

    def test_assembled_images(self, tiny_config, tiny_model):
        for image in (
            assemble_inference(tiny_model, tiny_config),
            assemble_training(tiny_model, tiny_config, batch=8),
        ):
            diags = verify_image(image, tiny_config)
            assert diags == [], image.service
