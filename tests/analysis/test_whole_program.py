"""The EQX4xx whole-program pass: broken-fixture corpus, escape
hatches, real-tree acceptance and the call-graph cache."""

from pathlib import Path

import pytest

from repro.analysis.suite import repo_source_root
from repro.analysis.whole_program import analyze_tree, coverage_lines

FIXTURES = Path(__file__).parent / "fixtures" / "whole_program"

#: Each broken mini-package and the single rule it must trip.
BROKEN = [
    ("eqx401_nondet_job", "EQX401"),
    ("eqx402_rng_divergence", "EQX402"),
    ("eqx403_cache_escape", "EQX403"),
    ("eqx404_unregistered", "EQX404"),
    ("eqx405_impure_merge", "EQX405"),
    ("eqx406_asymmetric_snapshot", "EQX406"),
    ("eqx407_unmergeable_metric", "EQX407"),
]


def _ids(report):
    return [d.rule_id for d in report.diagnostics]


class TestBrokenFixtures:
    @pytest.mark.parametrize("package,rule_id", BROKEN)
    def test_fixture_trips_exactly_its_rule(self, package, rule_id):
        report = analyze_tree(FIXTURES / package)
        assert set(_ids(report)) == {rule_id}

    def test_eqx401_witness_names_the_chain(self):
        report = analyze_tree(FIXTURES / "eqx401_nondet_job")
        (diag,) = report.diagnostics
        assert "_stamp" in diag.message  # the interprocedural hop
        assert "time.time" in diag.message  # the actual source

    def test_eqx402_reports_both_streams(self):
        report = analyze_tree(FIXTURES / "eqx402_rng_divergence")
        (diag,) = report.diagnostics
        assert "rng.normal" in diag.message
        assert "rng.random" in diag.message

    def test_eqx404_fires_for_both_shapes(self):
        """Unresolvable target AND unregistered job-shaped function."""
        report = analyze_tree(FIXTURES / "eqx404_unregistered")
        messages = [d.message for d in report.diagnostics]
        assert len(messages) == 2
        assert any("cannot resolve" in m for m in messages)
        assert any("not registered" in m for m in messages)

    def test_eqx406_fires_for_both_shapes(self):
        """Missing pair on a mutating class AND a one-sided pair —
        while the frozen dataclass and the suppressed class stay
        quiet."""
        report = analyze_tree(FIXTURES / "eqx406_asymmetric_snapshot")
        messages = [d.message for d in report.diagnostics]
        assert len(messages) == 2
        assert any(
            "neither to_state nor from_state" in m and "Counter" in m
            for m in messages
        )
        assert any(
            "to_state but not from_state" in m and "Gauge" in m
            for m in messages
        )
        assert not any("Audited" in m or "Settings" in m for m in messages)

    def test_eqx406_witness_names_the_mutation(self):
        report = analyze_tree(FIXTURES / "eqx406_asymmetric_snapshot")
        missing = [
            d for d in report.diagnostics if "neither" in d.message
        ]
        assert len(missing) == 1
        assert "self.count" in missing[0].message
        assert "bump()" in missing[0].message

    def test_eqx407_names_only_the_missing_fold(self):
        """The root with merge_state and the suppressed root stay
        quiet; the fold-less root is named with what it lacks."""
        report = analyze_tree(FIXTURES / "eqx407_unmergeable_metric")
        (diag,) = report.diagnostics
        assert "Tally" in diag.message
        assert "merge_state" in diag.message
        assert "Histogram" not in diag.message
        assert "Exempt" not in diag.message

    def test_diagnostics_are_errors(self):
        for package, _ in BROKEN:
            report = analyze_tree(FIXTURES / package)
            assert all(
                str(d.severity) == "error" for d in report.diagnostics
            )


class TestEscapeHatches:
    def test_audited_and_suppressed_jobs_are_quiet(self):
        report = analyze_tree(FIXTURES / "eqx40x_clean")
        assert report.diagnostics == []

    def test_clean_fixture_still_covers_its_jobs(self):
        coverage = analyze_tree(FIXTURES / "eqx40x_clean").coverage()
        assert coverage["jobs_covered"] == 2


class TestRealTree:
    """Acceptance: the shipped package analyzes clean with full
    entry-point coverage."""

    @pytest.fixture(scope="class")
    def report(self):
        return analyze_tree(repo_source_root())

    def test_no_diagnostics(self, report):
        assert report.diagnostics == []

    def test_job_registry_fully_covered(self, report):
        coverage = report.coverage()
        assert coverage["jobs_covered"] == len(coverage["jobs"])
        assert coverage["jobs_covered"] >= 3

    def test_kernel_pairs_fully_covered(self, report):
        coverage = report.coverage()
        assert coverage["kernels_covered"] == len(coverage["kernels"])
        assert coverage["kernels_covered"] >= 5

    def test_merge_state_folds_are_seen(self, report):
        assert len(report.coverage()["merge_state"]) >= 2

    def test_checkpoint_roots_fully_covered(self, report):
        """Every CHECKPOINT_ROOTS entry resolves to an indexed class —
        the EQX406 walk starts from all of them."""
        coverage = report.coverage()
        roots = coverage["checkpoint_roots"]
        assert coverage["checkpoint_roots_covered"] == len(roots)
        assert coverage["checkpoint_roots_covered"] >= 13
        assert roots["simulator"] == "repro.sim.engine.Simulator"
        assert roots["accelerator"] == "repro.core.equinox.EquinoxAccelerator"

    def test_window_merge_roots_fully_covered(self, report):
        """Every WINDOW_MERGE_ROOTS entry resolves to an indexed class
        carrying merge_state — the sharded executor's fold targets."""
        coverage = report.coverage()
        roots = coverage["window_merge_roots"]
        assert coverage["window_merge_roots_covered"] == len(roots)
        assert coverage["window_merge_roots_covered"] >= 3
        assert roots["capture"] == "repro.eval.runner.ExperimentCapture"
        assert roots["sketch.quantile"] == "repro.obs.sketch.QuantileSketch"
        assert roots["fault.counters"] == (
            "repro.faults.counters.FaultCounters"
        )

    def test_coverage_lines_render(self, report):
        lines = coverage_lines(report.coverage())
        assert any("jobs covered" in line for line in lines)
        assert any("kernel pairs covered" in line for line in lines)
        assert any("checkpoint roots covered" in line for line in lines)
        assert any("window-merge roots covered" in line for line in lines)


class TestCallGraphCache:
    def test_artifact_roundtrip(self, tmp_path):
        root = FIXTURES / "eqx401_nondet_job"
        cache = tmp_path / "cg"
        first = analyze_tree(root, cache_dir=cache)
        second = analyze_tree(root, cache_dir=cache)
        assert not first.from_cache
        assert second.from_cache
        assert _ids(first) == _ids(second)
        assert first.coverage()["digest"] == second.coverage()["digest"]

    def test_tree_change_invalidates(self, tmp_path):
        src = FIXTURES / "eqx401_nondet_job"
        root = tmp_path / "eqx401_nondet_job"  # keep registry targets valid
        root.mkdir()
        for path in src.glob("*.py"):
            (root / path.name).write_text(path.read_text())
        cache = tmp_path / "cg"
        first = analyze_tree(root, cache_dir=cache)
        (root / "tasks.py").write_text(
            "def run_demo(config, seed):\n    return {'seed': seed}\n"
        )
        second = analyze_tree(root, cache_dir=cache)
        assert not second.from_cache
        assert first.coverage()["digest"] != second.coverage()["digest"]

    def test_corrupt_artifact_is_rebuilt(self, tmp_path):
        root = FIXTURES / "eqx403_cache_escape"
        cache = tmp_path / "cg"
        analyze_tree(root, cache_dir=cache)
        (artifact,) = cache.glob("callgraph_*.json")
        artifact.write_text("{not json")
        report = analyze_tree(root, cache_dir=cache)
        assert not report.from_cache
        assert set(_ids(report)) == {"EQX403"}
