"""bfloat16 quantization."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.arith.bfloat16 import bfloat16_quantization_step, to_bfloat16

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestToBfloat16:
    def test_exactly_representable_values_pass_through(self):
        values = np.array([0.0, 1.0, -1.0, 0.5, 2.0, 128.0], dtype=np.float32)
        np.testing.assert_array_equal(to_bfloat16(values), values)

    def test_drops_low_mantissa_bits(self):
        # 1 + 2^-10 is below bfloat16 resolution near 1.0 (step 2^-7).
        assert to_bfloat16(np.float32(1.0 + 2.0**-10)) == np.float32(1.0)

    def test_round_to_nearest_even_up(self):
        # Halfway between 1.0 and 1+2^-7 rounds to even (1.0).
        halfway = np.float32(1.0 + 2.0**-8)
        assert to_bfloat16(halfway) == np.float32(1.0)

    def test_rounds_above_halfway_up(self):
        value = np.float32(1.0 + 2.0**-8 + 2.0**-9)
        assert to_bfloat16(value) == np.float32(1.0 + 2.0**-7)

    def test_preserves_nan(self):
        assert np.isnan(to_bfloat16(np.float32(np.nan)))

    def test_preserves_infinities(self):
        assert to_bfloat16(np.float32(np.inf)) == np.inf
        assert to_bfloat16(np.float32(-np.inf)) == -np.inf

    def test_preserves_shape(self):
        x = np.ones((3, 5, 2), dtype=np.float32)
        assert to_bfloat16(x).shape == (3, 5, 2)

    def test_negative_symmetry(self):
        x = np.linspace(0.001, 7.3, 97, dtype=np.float32)
        np.testing.assert_array_equal(to_bfloat16(-x), -to_bfloat16(x))

    @given(finite_floats)
    def test_idempotent(self, value):
        once = to_bfloat16(np.float32(value))
        np.testing.assert_array_equal(to_bfloat16(once), once)

    @given(finite_floats)
    def test_error_within_half_step(self, value):
        rounded = float(to_bfloat16(np.float32(value)))
        if not np.isfinite(rounded):
            return  # rounded up past float32 max — overflow territory
        step = bfloat16_quantization_step(float(np.float32(value)))
        assert abs(rounded - float(np.float32(value))) <= step / 2 + 1e-30

    @given(st.lists(finite_floats, min_size=2, max_size=32))
    def test_monotonic(self, values):
        ordered = np.sort(np.array(values, dtype=np.float32))
        rounded = to_bfloat16(ordered)
        # inf - inf is nan (values at float32 max round up to inf);
        # monotonicity only forbids strictly negative differences.
        assert not np.any(np.diff(rounded) < 0)


class TestQuantizationStep:
    def test_step_near_one(self):
        assert bfloat16_quantization_step(1.0) == pytest.approx(2.0**-7)

    def test_step_scales_with_exponent(self):
        assert bfloat16_quantization_step(256.0) == pytest.approx(2.0)

    def test_zero_returns_subnormal_step(self):
        assert bfloat16_quantization_step(0.0) > 0
