"""Block floating point tensors and tile matrix multiplication."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.bfp import BFPFormat, BlockFloatTensor, bfp_matmul, quantize_bfp


def small_arrays(max_dim=24):
    return st.tuples(
        st.integers(1, max_dim), st.integers(1, max_dim), st.integers(0, 2**31 - 1)
    ).map(
        lambda t: np.random.default_rng(t[2]).standard_normal((t[0], t[1])).astype(
            np.float32
        )
    )


class TestBFPFormat:
    def test_default_is_hbfp8_shape(self):
        fmt = BFPFormat()
        assert fmt.mantissa_bits == 8
        assert fmt.exponent_bits == 12

    def test_mantissa_range(self):
        fmt = BFPFormat(mantissa_bits=8)
        assert fmt.mantissa_min == -128
        assert fmt.mantissa_max == 127

    def test_rejects_tiny_mantissa(self):
        with pytest.raises(ValueError):
            BFPFormat(mantissa_bits=1)

    def test_rejects_bad_blocks(self):
        with pytest.raises(ValueError):
            BFPFormat(block_rows=0)


class TestEncodeDecode:
    def test_zero_tensor_roundtrips_exactly(self):
        x = np.zeros((8, 8), dtype=np.float32)
        np.testing.assert_array_equal(quantize_bfp(x), x)

    def test_power_of_two_values_nearly_exact(self):
        x = np.full((4, 4), 0.5, dtype=np.float32)
        out = quantize_bfp(x, BFPFormat(block_rows=4, block_cols=4))
        # The tile max is a power of two; it may clip by one LSB.
        np.testing.assert_allclose(out, x, rtol=1 / 127)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            BlockFloatTensor.from_float(np.zeros(5))

    def test_logical_shape_preserved_with_padding(self):
        x = np.random.default_rng(0).standard_normal((5, 7)).astype(np.float32)
        bfp = BlockFloatTensor.from_float(x, BFPFormat(block_rows=4, block_cols=4))
        assert bfp.shape == (5, 7)
        assert bfp.to_float().shape == (5, 7)

    def test_tile_grid_dimensions(self):
        x = np.zeros((9, 5), dtype=np.float32)
        bfp = BlockFloatTensor.from_float(x, BFPFormat(block_rows=4, block_cols=4))
        assert bfp.tile_grid == (3, 2)

    def test_mantissas_within_signed_range(self):
        x = np.random.default_rng(1).standard_normal((16, 16)) * 100
        bfp = BlockFloatTensor.from_float(x)
        assert bfp.mantissas.max() <= bfp.fmt.mantissa_max
        assert bfp.mantissas.min() >= bfp.fmt.mantissa_min

    def test_per_tile_exponents_track_magnitude(self):
        fmt = BFPFormat(block_rows=4, block_cols=4)
        x = np.ones((8, 4), dtype=np.float32)
        x[4:] *= 1024.0  # second tile row is much larger
        bfp = BlockFloatTensor.from_float(x, fmt)
        assert bfp.exponents[1, 0] == bfp.exponents[0, 0] + 10

    def test_storage_bits_accounts_exponents(self):
        fmt = BFPFormat(mantissa_bits=8, exponent_bits=12, block_rows=4, block_cols=4)
        x = np.zeros((4, 4), dtype=np.float32)
        bfp = BlockFloatTensor.from_float(x, fmt)
        assert bfp.storage_bits() == 16 * 8 + 12

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_relative_error_bounded_per_tile(self, x):
        fmt = BFPFormat(block_rows=8, block_cols=8)
        bfp = BlockFloatTensor.from_float(x, fmt)
        decoded = bfp.to_float()
        # Each value's error is at most ~one mantissa LSB at the tile's
        # shared scale (double the LSB covers the power-of-two clip).
        br, bc = fmt.block_rows, fmt.block_cols
        for ti in range(bfp.tile_grid[0]):
            for tj in range(bfp.tile_grid[1]):
                tile = x[ti * br : (ti + 1) * br, tj * bc : (tj + 1) * bc]
                out = decoded[ti * br : (ti + 1) * br, tj * bc : (tj + 1) * bc]
                if tile.size == 0:
                    continue
                max_abs = np.abs(tile).max()
                lsb = 2.0 * max_abs / 127
                assert np.abs(out - tile).max() <= lsb + 1e-12

    def test_quantization_error_helper(self):
        x = np.random.default_rng(5).standard_normal((8, 8)).astype(np.float32)
        bfp = BlockFloatTensor.from_float(x)
        assert bfp.quantization_error(x) >= 0.0
        assert bfp.quantization_error(x) == pytest.approx(
            float(np.abs(bfp.to_float() - x).max())
        )


class TestStochasticRounding:
    """The unbiased rounding HBFP uses on the weight-update path."""

    def test_unbiased_in_expectation(self):
        # A value between two codes must round to its expectation.
        fmt = BFPFormat(block_rows=4, block_cols=4)
        x = np.full((4, 4), 0.8 + 0.3 / 128, dtype=np.float32)
        rng = np.random.default_rng(0)
        decoded = [
            BlockFloatTensor.from_float(x, fmt, rounding="stochastic", rng=rng)
            .to_float()
            .mean()
            for _ in range(400)
        ]
        assert np.mean(decoded) == pytest.approx(float(x[0, 0]), rel=2e-3)

    def test_sub_lsb_signal_survives(self):
        """Nearest rounding erases a sub-LSB increment; stochastic
        rounding preserves it in expectation — why SGD's small updates
        need it."""
        fmt = BFPFormat(block_rows=8, block_cols=8)
        # 0.75 sits exactly on the mantissa grid (96/128) away from the
        # power-of-two exponent boundary.
        base = np.full((8, 8), 0.75, dtype=np.float32)
        bumped = base + 0.2 / 128  # 0.2 LSB at this tile's scale
        nearest = BlockFloatTensor.from_float(bumped, fmt).to_float()
        rng = np.random.default_rng(1)
        stochastic = np.mean(
            [
                BlockFloatTensor.from_float(
                    bumped, fmt, rounding="stochastic", rng=rng
                ).to_float()
                for _ in range(600)
            ],
            axis=0,
        )
        reference = BlockFloatTensor.from_float(base, fmt).to_float()
        assert np.all(nearest == reference)  # increment lost
        assert stochastic.mean() > reference.mean()  # increment kept

    def test_values_on_grid_unchanged(self):
        fmt = BFPFormat(block_rows=4, block_cols=4)
        x = np.zeros((4, 4), dtype=np.float32)
        out = BlockFloatTensor.from_float(x, fmt, rounding="stochastic")
        np.testing.assert_array_equal(out.to_float(), x)

    def test_mantissas_stay_in_range(self):
        fmt = BFPFormat(block_rows=4, block_cols=4)
        x = np.random.default_rng(2).standard_normal((16, 16)) * 50
        out = BlockFloatTensor.from_float(x, fmt, rounding="stochastic")
        assert out.mantissas.max() <= fmt.mantissa_max
        assert out.mantissas.min() >= fmt.mantissa_min

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            BlockFloatTensor.from_float(np.zeros((2, 2)), rounding="truncate")


class TestBFPMatmul:
    def _pair(self, m, k, n, seed=0, block=4):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        fmt_a = BFPFormat(block_rows=block, block_cols=block)
        fmt_b = BFPFormat(block_rows=block, block_cols=block)
        return (
            BlockFloatTensor.from_float(a, fmt_a),
            BlockFloatTensor.from_float(b, fmt_b),
            a,
            b,
        )

    def test_matches_float_gemm_closely(self):
        a_bfp, b_bfp, a, b = self._pair(8, 12, 6, seed=2)
        out = bfp_matmul(a_bfp, b_bfp)
        exact = a @ b
        scale = np.abs(exact).max()
        assert np.abs(out - exact).max() / scale < 0.03

    def test_shape_mismatch_raises(self):
        a_bfp, _, _, _ = self._pair(4, 8, 4)
        b_bfp = BlockFloatTensor.from_float(
            np.zeros((9, 4), dtype=np.float32),
            BFPFormat(block_rows=4, block_cols=4),
        )
        with pytest.raises(ValueError):
            bfp_matmul(a_bfp, b_bfp)

    def test_tile_alignment_required(self):
        a_bfp = BlockFloatTensor.from_float(
            np.zeros((4, 8), dtype=np.float32),
            BFPFormat(block_rows=4, block_cols=8),
        )
        b_bfp = BlockFloatTensor.from_float(
            np.zeros((8, 4), dtype=np.float32),
            BFPFormat(block_rows=4, block_cols=4),
        )
        with pytest.raises(ValueError):
            bfp_matmul(a_bfp, b_bfp)

    def test_output_logical_shape(self):
        a_bfp, b_bfp, _, _ = self._pair(5, 9, 7)
        assert bfp_matmul(a_bfp, b_bfp).shape == (5, 7)

    def test_accumulator_saturation_clamps(self):
        # All-max mantissas across a long reduction overflow a narrow
        # accumulator; the saturated result must stay finite and below
        # the unsaturated product.
        k = 64
        a = np.full((4, k), 1.0, dtype=np.float32)
        b = np.full((k, 4), 1.0, dtype=np.float32)
        fmt = BFPFormat(block_rows=4, block_cols=k)
        fmt_b = BFPFormat(block_rows=k, block_cols=4)
        a_bfp = BlockFloatTensor.from_float(a, fmt)
        b_bfp = BlockFloatTensor.from_float(b, fmt_b)
        wide = bfp_matmul(a_bfp, b_bfp, accumulator_bits=32)
        narrow = bfp_matmul(a_bfp, b_bfp, accumulator_bits=16)
        assert np.all(np.isfinite(narrow))
        assert narrow.max() < wide.max()

    @given(
        st.integers(2, 10), st.integers(2, 12), st.integers(2, 10),
        st.integers(0, 1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_error_scales_with_operands(self, m, k, n, seed):
        a_bfp, b_bfp, a, b = self._pair(m, k, n, seed=seed)
        out = bfp_matmul(a_bfp, b_bfp)
        # Error bound: per-element products carry ~2/127 relative error
        # each, accumulated over k terms of magnitude <= |a|max·|b|max.
        bound = 4.0 / 127 * k * np.abs(a).max() * np.abs(b).max()
        assert np.abs(out - a @ b).max() <= bound
