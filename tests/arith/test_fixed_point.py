"""Fixed-point formats and quantization."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.arith.fixed_point import (
    FixedPointFormat,
    quantize_fixed_point,
    quantize_to_integers,
)


class TestFixedPointFormat:
    def test_scale_is_lsb(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=7)
        assert fmt.scale == pytest.approx(2.0**-7)

    def test_max_min_values(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=7)
        assert fmt.max_value == pytest.approx(127 / 128)
        assert fmt.min_value == pytest.approx(-1.0)

    def test_rejects_too_few_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=1, frac_bits=0)

    def test_for_range_covers_max(self):
        fmt = FixedPointFormat.for_range(3.7, total_bits=8)
        assert fmt.max_value >= 3.7

    def test_for_range_maximizes_resolution(self):
        fmt = FixedPointFormat.for_range(0.9, total_bits=8)
        # 0.9 fits in Q1.7; using fewer fractional bits would waste range.
        assert fmt.frac_bits == 7

    def test_for_range_zero_input(self):
        fmt = FixedPointFormat.for_range(0.0, total_bits=8)
        assert fmt.frac_bits == 7

    def test_negative_frac_bits_scale_up(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=-2)
        assert fmt.scale == 4.0


class TestQuantize:
    def test_exact_grid_points_pass_through(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=4)
        values = np.array([0.0, 0.0625, -0.125, 1.5])
        np.testing.assert_allclose(quantize_fixed_point(values, fmt), values)

    def test_saturates_high(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=7)
        assert quantize_fixed_point(np.array([5.0]), fmt)[0] == pytest.approx(
            fmt.max_value
        )

    def test_saturates_low(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=7)
        assert quantize_fixed_point(np.array([-5.0]), fmt)[0] == pytest.approx(
            fmt.min_value
        )

    def test_rounds_to_nearest(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=2)
        assert quantize_fixed_point(np.array([0.3]), fmt)[0] == pytest.approx(0.25)
        assert quantize_fixed_point(np.array([0.4]), fmt)[0] == pytest.approx(0.5)

    @given(
        st.floats(min_value=-0.8, max_value=0.8),
        st.integers(min_value=4, max_value=16),
    )
    def test_error_bounded_by_half_lsb(self, value, bits):
        # Values within the representable range (max_value >= 0.875 for
        # bits >= 4) see at most half-LSB rounding error.
        fmt = FixedPointFormat(total_bits=bits, frac_bits=bits - 1)
        out = float(quantize_fixed_point(np.array([value]), fmt)[0])
        assert abs(out - value) <= fmt.scale / 2 + 1e-12

    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=20))
    def test_idempotent(self, values):
        fmt = FixedPointFormat(total_bits=8, frac_bits=3)
        once = quantize_fixed_point(np.array(values), fmt)
        np.testing.assert_array_equal(quantize_fixed_point(once, fmt), once)


class TestIntegerCodes:
    def test_codes_match_scaled_values(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=4)
        codes = quantize_to_integers(np.array([1.0, -0.5, 0.0625]), fmt)
        np.testing.assert_array_equal(codes, [16, -8, 1])

    def test_codes_saturate(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=0)
        codes = quantize_to_integers(np.array([1000.0, -1000.0]), fmt)
        np.testing.assert_array_equal(codes, [127, -128])

    def test_codes_int32_dtype(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=0)
        assert quantize_to_integers(np.zeros(3), fmt).dtype == np.int32
