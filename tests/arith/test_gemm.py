"""Encoding-dispatched GEMM."""

import numpy as np
import pytest

from repro.arith.gemm import bfloat16_gemm, fixed8_gemm, gemm, reference_gemm


@pytest.fixture
def operands():
    rng = np.random.default_rng(0)
    return (
        rng.standard_normal((12, 24)).astype(np.float32),
        (rng.standard_normal((24, 8)) * 0.3).astype(np.float32),
    )


class TestDispatch:
    @pytest.mark.parametrize("encoding", ["fp32", "bfloat16", "fixed8", "hbfp8"])
    def test_all_encodings_produce_close_results(self, operands, encoding):
        a, b = operands
        out = gemm(a, b, encoding)
        exact = reference_gemm(a, b)
        assert out.shape == exact.shape
        assert np.abs(out - exact).max() / np.abs(exact).max() < 0.08

    def test_unknown_encoding_raises_with_choices(self, operands):
        a, b = operands
        with pytest.raises(KeyError, match="hbfp8"):
            gemm(a, b, "int4")

    def test_fp32_is_exact_reference(self, operands):
        a, b = operands
        np.testing.assert_array_equal(gemm(a, b, "fp32"), reference_gemm(a, b))

    def test_output_dtype_float32(self, operands):
        a, b = operands
        for encoding in ("fp32", "bfloat16", "fixed8", "hbfp8"):
            assert gemm(a, b, encoding).dtype == np.float32


class TestEncodingAccuracyOrdering:
    def test_hbfp8_beats_fixed8_on_mixed_scales(self):
        """HBFP's per-tile exponents absorb dynamic range that a single
        per-tensor fixed-point format cannot — the property that makes
        training converge (paper §2.2). A lone outlier wrecks fixed8's
        global scale for every value; it only degrades its own tile in
        HBFP, so the outlier-free output rows stay accurate."""
        rng = np.random.default_rng(7)
        a = rng.standard_normal((48, 32)).astype(np.float32)
        a[0, 0] = 1000.0  # outlier confined to the first 16-row tile
        b = rng.standard_normal((32, 16)).astype(np.float32)
        exact = reference_gemm(a, b)
        clean = slice(16, None)  # rows whose tiles exclude the outlier
        err_hbfp = np.abs(gemm(a, b, "hbfp8")[clean] - exact[clean]).max()
        err_fixed = np.abs(fixed8_gemm(a, b)[clean] - exact[clean]).max()
        assert err_hbfp < err_fixed / 5

    def test_bfloat16_error_bounded(self):
        rng = np.random.default_rng(8)
        a = rng.standard_normal((16, 64)).astype(np.float32)
        b = rng.standard_normal((64, 16)).astype(np.float32)
        exact = reference_gemm(a, b)
        err = np.abs(bfloat16_gemm(a, b) - exact).max()
        # Two operands at 2^-8 relative error over the reduction.
        assert err <= 3 * 2.0**-8 * 64 * np.abs(a).max() * np.abs(b).max() / 8
