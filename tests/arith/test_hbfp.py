"""HBFP GEMM pipeline."""

import numpy as np
import pytest

from repro.arith.bfp import BFPFormat
from repro.arith.hbfp import HBFP8, HBFPConfig, hbfp_gemm, hbfp_quantization_noise


class TestHBFPGemm:
    def _operands(self, m=16, k=32, n=8, seed=0):
        rng = np.random.default_rng(seed)
        return (
            rng.standard_normal((m, k)).astype(np.float32),
            (rng.standard_normal((k, n)) * 0.2).astype(np.float32),
        )

    def test_close_to_fp32(self):
        a, b = self._operands()
        out = hbfp_gemm(a, b)
        exact = a @ b
        assert np.abs(out - exact).max() / np.abs(exact).max() < 0.05

    def test_output_is_bfloat16_grid(self):
        from repro.arith.bfloat16 import to_bfloat16

        a, b = self._operands(seed=3)
        out = hbfp_gemm(a, b)
        np.testing.assert_array_equal(out, to_bfloat16(out))

    def test_simd_rounding_can_be_disabled(self):
        a, b = self._operands(seed=4)
        config = HBFPConfig(simd_in_bfloat16=False)
        raw = hbfp_gemm(a, b, config)
        rounded = hbfp_gemm(a, b)
        # Same BFP products, different final rounding.
        assert np.abs(raw - rounded).max() <= np.abs(raw).max() / 64

    def test_handles_non_tile_multiple_shapes(self):
        a, b = self._operands(m=5, k=19, n=3, seed=1)
        assert hbfp_gemm(a, b).shape == (5, 3)

    def test_custom_block_size(self):
        a, b = self._operands(seed=2)
        config = HBFPConfig(bfp=BFPFormat(block_rows=4, block_cols=4))
        out = hbfp_gemm(a, b, config)
        exact = a @ b
        # Smaller tiles -> tighter exponents -> at least as accurate.
        assert np.abs(out - exact).max() / np.abs(exact).max() < 0.05

    def test_default_config_is_paper_operating_point(self):
        assert HBFP8.bfp.mantissa_bits == 8
        assert HBFP8.bfp.exponent_bits == 12
        assert HBFP8.accumulator_bits == 25
        assert HBFP8.simd_in_bfloat16


class TestQuantizationNoise:
    def test_zero_for_zero_input(self):
        assert hbfp_quantization_noise(np.zeros((8, 8))) == 0.0

    def test_small_for_uniform_scale_data(self):
        x = np.random.default_rng(0).standard_normal((64, 64))
        assert hbfp_quantization_noise(x) < 0.01

    def test_within_tile_outliers_degrade_small_values(self):
        from repro.arith.bfp import quantize_bfp

        flat = np.full((16, 16), 0.5, dtype=np.float32)
        spiky = flat.copy()
        spiky[0, 0] = 1000.0  # shares a tile exponent with the 0.5s
        err_flat = np.abs(quantize_bfp(flat)[1:, 1:] - 0.5).max()
        err_spiky = np.abs(quantize_bfp(spiky)[1:, 1:] - 0.5).max()
        assert err_spiky > err_flat

    def test_noise_is_relative(self):
        x = np.random.default_rng(2).standard_normal((32, 32))
        a = hbfp_quantization_noise(x)
        b = hbfp_quantization_noise(x * 1000.0)
        assert a == pytest.approx(b, rel=0.2)
