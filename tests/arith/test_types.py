"""Encoding descriptors."""

import pytest

from repro.arith.types import ENCODINGS, Encoding, encoding_by_name


class TestRegistry:
    def test_paper_encodings_present(self):
        assert {"hbfp8", "bfloat16", "fixed8"} <= set(ENCODINGS)

    def test_lookup_by_name(self):
        assert encoding_by_name("hbfp8").name == "hbfp8"

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="bfloat16"):
            encoding_by_name("fp64")


class TestEncodingProperties:
    def test_hbfp8_exponent_amortized_across_block(self):
        enc = ENCODINGS["hbfp8"]
        assert enc.exponent_overhead_bytes == pytest.approx(12 / 8 / 256)
        assert enc.bytes_per_operand == pytest.approx(1.0 + 12 / 8 / 256)

    def test_bfloat16_two_bytes(self):
        assert ENCODINGS["bfloat16"].operand_bytes == 2.0

    def test_fixed8_cannot_train(self):
        assert not ENCODINGS["fixed8"].supports_training

    def test_training_encodings(self):
        assert ENCODINGS["hbfp8"].supports_training
        assert ENCODINGS["bfloat16"].supports_training

    def test_non_block_exponent_overhead(self):
        enc = Encoding(
            name="e", operand_bytes=2.0, multiplier_bits=8,
            accumulator_bits=32, supports_training=True,
            block_size=1, exponent_bits=8,
        )
        assert enc.exponent_overhead_bytes == 1.0

    def test_hbfp8_accumulator_width(self):
        assert ENCODINGS["hbfp8"].accumulator_bits == 25
