"""Fleet composition and the parameter server."""

import pytest

from repro.cluster.fleet import EquinoxFleet
from repro.cluster.parameter_server import ParameterServer


class TestParameterServer:
    def test_round_composition(self):
        server = ParameterServer(
            network_bytes_per_s=1e9, update_ops_per_s=1e9,
            gradient_bytes_per_weight=2.0, model_bytes_per_weight=2.0,
        )
        sync = server.round([0.01, 0.02], model_weights=1_000_000)
        assert sync.compute_s == 0.02  # the barrier: slowest worker
        assert sync.gather_s == pytest.approx(2 * 2e6 / 1e9)
        assert sync.broadcast_s == pytest.approx(2 * 2e6 / 1e9)
        assert sync.update_s == pytest.approx(2e6 / 1e9)
        assert sync.total_s == pytest.approx(
            sync.compute_s + sync.gather_s + sync.update_s + sync.broadcast_s
        )

    def test_communication_fraction(self):
        server = ParameterServer(network_bytes_per_s=1e9)
        fast = server.round([1.0], model_weights=1000)
        assert fast.communication_fraction < 0.01

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ParameterServer(network_bytes_per_s=0)
        server = ParameterServer()
        with pytest.raises(ValueError):
            server.round([], model_weights=10)
        with pytest.raises(ValueError):
            server.round([1.0], model_weights=0)


class TestFleet:
    @pytest.fixture(scope="class")
    def report(self):
        fleet = EquinoxFleet(size=3)
        return fleet.train(loads=[0.2, 0.5, 0.8], batches=4, local_steps=8)

    def test_one_report_per_worker(self, report):
        assert len(report.workers) == 3
        assert [w.load for w in report.workers] == [0.2, 0.5, 0.8]

    def test_busier_workers_harvest_less(self, report):
        harvests = [w.training_top_s for w in report.workers]
        assert harvests[0] > harvests[2]

    def test_barrier_set_by_slowest_worker(self, report):
        slowest = max(w.iteration_s for w in report.workers)
        assert report.round.compute_s == pytest.approx(8 * slowest)

    def test_fleet_throughput_positive_and_bounded(self, report):
        independent = sum(w.training_top_s for w in report.workers)
        assert 0 < report.fleet_training_top_s <= independent * 1.001
        assert 0 < report.scaling_efficiency <= 1.0

    def test_dedicated_equivalents(self, report):
        assert report.dedicated_equivalents == pytest.approx(
            report.fleet_training_top_s / report.dedicated_top_s
        )
        # Three moderately loaded inference accelerators harvest a
        # nontrivial fraction of a dedicated training accelerator.
        assert report.dedicated_equivalents > 0.5

    def test_local_steps_amortize_communication(self):
        fleet = EquinoxFleet(size=2)
        tight = fleet.train(loads=[0.4, 0.4], batches=3, local_steps=1)
        loose = fleet.train(loads=[0.4, 0.4], batches=3, local_steps=16)
        assert loose.scaling_efficiency > tight.scaling_efficiency

    def test_rejects_mismatched_loads(self):
        fleet = EquinoxFleet(size=2)
        with pytest.raises(ValueError):
            fleet.train(loads=[0.5])

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            EquinoxFleet(size=0)
