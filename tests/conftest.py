"""Shared fixtures: small, fast accelerator configurations and models."""

import pytest

from repro.hw.config import AcceleratorConfig
from repro.models.graph import GemmLayer, ModelSpec
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def tiny_config():
    """A small design point that keeps simulations fast in tests."""
    return AcceleratorConfig(
        name="tiny", n=4, m=2, w=2, frequency_hz=1e9, encoding="hbfp8"
    )


@pytest.fixture
def small_config():
    """A mid-size point exercising multi-tile GEMMs."""
    return AcceleratorConfig(
        name="small", n=8, m=4, w=4, frequency_hz=1e9, encoding="hbfp8"
    )


@pytest.fixture
def tiny_model():
    """A two-step recurrent model matched to the tiny config."""
    return ModelSpec(
        name="tiny_rnn",
        layers=(
            GemmLayer(
                name="cell", k=32, n_out=64, repeats=2,
                simd_ops_per_sample=64.0,
            ),
        ),
    )


@pytest.fixture
def tiny_mlp_model():
    return ModelSpec(
        name="tiny_mlp",
        layers=(
            GemmLayer(name="fc0", k=16, n_out=32, simd_ops_per_sample=32.0),
            GemmLayer(name="fc1", k=32, n_out=8, simd_ops_per_sample=8.0),
        ),
    )
