"""Batch-formation policies."""

import pytest
from hypothesis import given, strategies as st

from repro.core.batching import AdaptiveBatching, StaticBatching, make_batching


class TestStaticBatching:
    def test_issues_only_full(self):
        policy = StaticBatching(slots=8)
        assert not policy.should_issue(7, oldest_wait_cycles=1e9)
        assert policy.should_issue(8, oldest_wait_cycles=0)

    def test_no_deadline(self):
        assert StaticBatching(8).deadline_cycles(100.0) is None

    def test_rejects_bad_slots(self):
        with pytest.raises(ValueError):
            StaticBatching(0)

    @given(st.integers(0, 100), st.floats(0, 1e12))
    def test_never_issues_partial(self, queued, wait):
        policy = StaticBatching(slots=16)
        assert policy.should_issue(queued, wait) == (queued >= 16)


class TestAdaptiveBatching:
    def test_issues_full_immediately(self):
        policy = AdaptiveBatching(slots=8, timeout_cycles=100)
        assert policy.should_issue(8, oldest_wait_cycles=0)

    def test_issues_partial_at_timeout(self):
        policy = AdaptiveBatching(slots=8, timeout_cycles=100)
        assert not policy.should_issue(3, oldest_wait_cycles=99)
        assert policy.should_issue(3, oldest_wait_cycles=100)

    def test_never_issues_empty(self):
        policy = AdaptiveBatching(slots=8, timeout_cycles=100)
        assert not policy.should_issue(0, oldest_wait_cycles=1e9)

    def test_deadline_is_arrival_plus_timeout(self):
        policy = AdaptiveBatching(slots=8, timeout_cycles=100)
        assert policy.deadline_cycles(40.0) == 140.0

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            AdaptiveBatching(slots=8, timeout_cycles=0)

    @given(st.integers(1, 32), st.floats(0, 1e9))
    def test_formation_wait_bounded_by_timeout(self, queued, wait):
        """The invariant Figure 11a rests on: no request waits in the
        formation buffer beyond the threshold."""
        policy = AdaptiveBatching(slots=33, timeout_cycles=500.0)
        if wait >= 500.0:
            assert policy.should_issue(queued, wait)


class TestFactory:
    def test_builds_static(self):
        assert isinstance(make_batching("static", 8), StaticBatching)

    def test_builds_adaptive(self):
        policy = make_batching("adaptive", 8, timeout_cycles=50)
        assert isinstance(policy, AdaptiveBatching)
        assert policy.timeout_cycles == 50

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_batching("greedy", 8)
