"""Per-service hardware contexts."""

import pytest

from repro.core.contexts import ServiceContext
from repro.hw.buffers import BufferCapacityError, OnChipBuffer
from repro.hw.isa import Program, StepProgram


@pytest.fixture
def program():
    return Program(name="p", steps=[StepProgram()], rows=4, useful_ops_per_row=1.0)


@pytest.fixture
def buffers(sim):
    return (
        OnChipBuffer(sim, "weight", 1000, 10),
        OnChipBuffer(sim, "activation", 500, 10),
    )


class TestServiceContext:
    def test_bind_reserves_both_buffers(self, program, buffers):
        weight, activation = buffers
        ctx = ServiceContext("inference", program)
        ctx.bind_buffers(weight, activation, 600, 200)
        assert weight.allocation_of("inference") == 600
        assert activation.allocation_of("inference") == 200

    def test_release_frees_space(self, program, buffers):
        weight, activation = buffers
        ctx = ServiceContext("inference", program)
        ctx.bind_buffers(weight, activation, 600, 200)
        ctx.release_buffers()
        assert weight.free_bytes == 1000
        assert activation.free_bytes == 500

    def test_oversubscription_propagates(self, program, buffers):
        weight, activation = buffers
        ctx = ServiceContext("training", program)
        with pytest.raises(BufferCapacityError):
            ctx.bind_buffers(weight, activation, 2000, 10)

    def test_two_contexts_space_share(self, program, buffers):
        weight, activation = buffers
        inference = ServiceContext("inference", program)
        training = ServiceContext("training", program)
        inference.bind_buffers(weight, activation, 900, 400)
        training.bind_buffers(weight, activation, 100, 100)
        assert weight.free_bytes == 0

    def test_instruction_counters(self, program):
        ctx = ServiceContext("inference", program)
        ctx.instructions_issued = 10
        ctx.instructions_completed = 7
        assert ctx.instructions_outstanding == 3
