"""Request dispatcher and inference/training engines."""

import pytest

from repro.core.batching import AdaptiveBatching, StaticBatching
from repro.core.dispatcher import InferenceEngine, RequestDispatcher, TrainingEngine
from repro.core.scheduler import InferenceOnlyScheduler, PriorityScheduler
from repro.hw.dram import HBMInterface
from repro.hw.mmu import MatrixMultiplyUnit
from repro.hw.simd import SIMDUnit
from repro.models.compiler import TileCompiler


class TestRequestDispatcher:
    def test_full_batch_issues_immediately(self, sim):
        formed = []
        dispatcher = RequestDispatcher(
            sim, StaticBatching(slots=3), on_batch=formed.append
        )
        for _ in range(3):
            dispatcher.submit()
        assert len(formed) == 1
        assert formed[0].real_count == 3
        assert not formed[0].is_padded

    def test_static_never_times_out(self, sim):
        formed = []
        dispatcher = RequestDispatcher(
            sim, StaticBatching(slots=4), on_batch=formed.append
        )
        dispatcher.submit()
        sim.run(until=1e9)
        assert formed == []
        assert dispatcher.queue_size == 1

    def test_adaptive_times_out_with_padding(self, sim):
        formed = []
        dispatcher = RequestDispatcher(
            sim, AdaptiveBatching(slots=4, timeout_cycles=100), on_batch=formed.append
        )
        dispatcher.submit()
        sim.run()
        assert len(formed) == 1
        assert formed[0].dummy_count == 3
        assert formed[0].formed_cycle == 100.0
        assert dispatcher.incomplete_batches == 1

    def test_adaptive_timer_measures_oldest(self, sim):
        formed = []
        dispatcher = RequestDispatcher(
            sim, AdaptiveBatching(slots=4, timeout_cycles=100), on_batch=formed.append
        )
        dispatcher.submit()
        sim.at(60, dispatcher.submit)
        sim.run()
        assert formed[0].formed_cycle == 100.0
        assert formed[0].real_count == 2

    def test_burst_forms_multiple_batches(self, sim):
        formed = []
        dispatcher = RequestDispatcher(
            sim, AdaptiveBatching(slots=2, timeout_cycles=100), on_batch=formed.append
        )
        for _ in range(5):
            dispatcher.submit()
        assert len(formed) == 2
        assert dispatcher.queue_size == 1

    def test_queue_decrease_hook(self, sim):
        pokes = []
        dispatcher = RequestDispatcher(
            sim, StaticBatching(slots=2), on_batch=lambda b: None
        )
        dispatcher.on_queue_decrease = lambda: pokes.append(sim.now)
        dispatcher.submit()
        dispatcher.submit()
        assert pokes == [0.0]

    def test_flush_forces_partial(self, sim):
        formed = []
        dispatcher = RequestDispatcher(
            sim, StaticBatching(slots=4), on_batch=formed.append
        )
        dispatcher.submit()
        dispatcher.flush()
        assert len(formed) == 1
        assert formed[0].real_count == 1


class _Bench:
    """Wired datapath + engines around one compiled model."""

    def __init__(self, sim, config, model, scheduler, training_model=None,
                 training_batch=8):
        compiler = TileCompiler(config, chunk_us=0.05)
        self.program = compiler.compile_inference(model)
        self.mmu = MatrixMultiplyUnit(sim, config)
        self.simd = SIMDUnit(sim, config)
        self.hbm = HBMInterface(sim, config)
        self.engine = InferenceEngine(
            sim, config, self.mmu, self.simd, self.program, scheduler
        )
        self.dispatcher = RequestDispatcher(
            sim, AdaptiveBatching(self.program.rows, timeout_cycles=1000),
            on_batch=self.engine.enqueue,
        )
        self.training = None
        if training_model is not None:
            train_prog = compiler.compile_training(
                training_model, batch=training_batch
            )
            self.training = TrainingEngine(
                sim, config, self.mmu, self.simd, self.hbm, train_prog,
                scheduler, inference_queue_size=lambda: self.dispatcher.queue_size,
            )
        self.mmu.set_policy(scheduler, lambda: self.dispatcher.queue_size)


class TestInferenceEngine:
    def test_batch_completes_and_records_latency(self, sim, small_config, tiny_model):
        bench = _Bench(sim, small_config, tiny_model, InferenceOnlyScheduler())
        for _ in range(bench.program.rows):
            bench.dispatcher.submit()
        sim.run()
        assert bench.engine.batches_completed == 1
        assert bench.engine.latency.count == bench.program.rows
        assert bench.engine.latency.max() > 0

    def test_latency_includes_formation_wait(self, sim, small_config, tiny_model):
        bench = _Bench(sim, small_config, tiny_model, InferenceOnlyScheduler())
        bench.dispatcher.submit()  # lone request waits for the timeout
        sim.run()
        assert bench.engine.latency.max() >= 1000

    def test_batches_complete_in_order(self, sim, small_config, tiny_model):
        bench = _Bench(sim, small_config, tiny_model, InferenceOnlyScheduler())
        for _ in range(3 * bench.program.rows):
            bench.dispatcher.submit()
        sim.run()
        assert bench.engine.batches_completed == 3

    def test_service_time_matches_analytic_chain(self, sim, small_config, tiny_model):
        """Unloaded batch latency = occupancy + drains + SIMD tails."""
        bench = _Bench(sim, small_config, tiny_model, InferenceOnlyScheduler())
        for _ in range(bench.program.rows):
            bench.dispatcher.submit()
        sim.run()
        drain = small_config.pipeline_drain_cycles
        expected = sum(
            step.mmu_cycles + drain + step.simd.cycles
            for step in bench.program.steps
        )
        assert bench.engine.latency.max() == pytest.approx(expected, rel=0.01)


class TestTrainingEngine:
    def test_completes_iterations_on_idle_machine(self, sim, small_config, tiny_model):
        bench = _Bench(
            sim, small_config, tiny_model, PriorityScheduler(16),
            training_model=tiny_model,
        )
        bench.training.start()
        sim.run(until=5e5)
        assert bench.training.iterations_completed >= 1

    def test_respects_allows_training(self, sim, small_config, tiny_model):
        bench = _Bench(
            sim, small_config, tiny_model, InferenceOnlyScheduler(),
            training_model=tiny_model,
        )
        bench.training.start()
        sim.run(until=1e5)
        assert bench.training.iterations_completed == 0

    def test_double_start_rejected(self, sim, small_config, tiny_model):
        bench = _Bench(
            sim, small_config, tiny_model, PriorityScheduler(16),
            training_model=tiny_model,
        )
        bench.training.start()
        with pytest.raises(RuntimeError):
            bench.training.start()

    def test_training_streams_weights_from_dram(self, sim, small_config, tiny_model):
        bench = _Bench(
            sim, small_config, tiny_model, PriorityScheduler(16),
            training_model=tiny_model,
        )
        bench.training.start()
        sim.run(until=5e5)
        assert bench.hbm.bytes_by_kind.get("train_stream", 0) > 0
        assert bench.hbm.bytes_by_kind.get("param_sync", 0) > 0

    def test_iterations_have_positive_duration(self, sim, small_config, tiny_model):
        bench = _Bench(
            sim, small_config, tiny_model, PriorityScheduler(16),
            training_model=tiny_model,
        )
        bench.training.start()
        sim.run(until=5e5)
        assert all(
            record.duration_cycles > 0 for record in bench.training.iterations
        )
