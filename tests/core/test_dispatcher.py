"""Request dispatcher and inference/training engines."""

import pytest

from repro.core.batching import AdaptiveBatching, PullBatching, StaticBatching
from repro.core.dispatcher import (
    FairShareDispatcher,
    InferenceEngine,
    RequestDispatcher,
    TenantShare,
    TrainingEngine,
)
from repro.core.scheduler import InferenceOnlyScheduler, PriorityScheduler
from repro.faults.admission import AdmissionControl
from repro.sim.engine import SnapshotError
from repro.hw.dram import HBMInterface
from repro.hw.mmu import MatrixMultiplyUnit
from repro.hw.simd import SIMDUnit
from repro.models.compiler import TileCompiler


class TestRequestDispatcher:
    def test_full_batch_issues_immediately(self, sim):
        formed = []
        dispatcher = RequestDispatcher(
            sim, StaticBatching(slots=3), on_batch=formed.append
        )
        for _ in range(3):
            dispatcher.submit()
        assert len(formed) == 1
        assert formed[0].real_count == 3
        assert not formed[0].is_padded

    def test_static_never_times_out(self, sim):
        formed = []
        dispatcher = RequestDispatcher(
            sim, StaticBatching(slots=4), on_batch=formed.append
        )
        dispatcher.submit()
        sim.run(until=1e9)
        assert formed == []
        assert dispatcher.queue_size == 1

    def test_adaptive_times_out_with_padding(self, sim):
        formed = []
        dispatcher = RequestDispatcher(
            sim, AdaptiveBatching(slots=4, timeout_cycles=100), on_batch=formed.append
        )
        dispatcher.submit()
        sim.run()
        assert len(formed) == 1
        assert formed[0].dummy_count == 3
        assert formed[0].formed_cycle == 100.0
        assert dispatcher.incomplete_batches == 1

    def test_adaptive_timer_measures_oldest(self, sim):
        formed = []
        dispatcher = RequestDispatcher(
            sim, AdaptiveBatching(slots=4, timeout_cycles=100), on_batch=formed.append
        )
        dispatcher.submit()
        sim.at(60, dispatcher.submit)
        sim.run()
        assert formed[0].formed_cycle == 100.0
        assert formed[0].real_count == 2

    def test_burst_forms_multiple_batches(self, sim):
        formed = []
        dispatcher = RequestDispatcher(
            sim, AdaptiveBatching(slots=2, timeout_cycles=100), on_batch=formed.append
        )
        for _ in range(5):
            dispatcher.submit()
        assert len(formed) == 2
        assert dispatcher.queue_size == 1

    def test_queue_decrease_hook(self, sim):
        pokes = []
        dispatcher = RequestDispatcher(
            sim, StaticBatching(slots=2), on_batch=lambda b: None
        )
        dispatcher.on_queue_decrease = lambda: pokes.append(sim.now)
        dispatcher.submit()
        dispatcher.submit()
        assert pokes == [0.0]

    def test_flush_forces_partial(self, sim):
        formed = []
        dispatcher = RequestDispatcher(
            sim, StaticBatching(slots=4), on_batch=formed.append
        )
        dispatcher.submit()
        dispatcher.flush()
        assert len(formed) == 1
        assert formed[0].real_count == 1


class TestRetryAccounting:
    """The shed+retry interleaving regression: a request waiting out a
    retry backoff is live — flush must fold it back in, snapshots must
    refuse while it is pending, and the submitted = batched + shed +
    timed-out identity must survive every path."""

    ADMISSION = AdmissionControl(
        deadline_cycles=100.0, max_retries=1, backoff_cycles=50.0
    )

    def _dispatcher(self, sim, formed):
        # PullBatching never self-issues, so requests sit in the buffer
        # until their deadline fires — the retry path on demand.
        return RequestDispatcher(
            sim, PullBatching(4), formed.append, admission=self.ADMISSION
        )

    def test_retry_then_timeout_keeps_identity(self, sim):
        formed = []
        dispatcher = self._dispatcher(sim, formed)
        request = dispatcher.submit()
        sim.run()
        # Deadline at 100, one re-admission at 150, final deadline 250.
        assert dispatcher.request_retries == 1
        assert dispatcher.request_timeouts == 1
        assert request.timed_out
        assert dispatcher.queue_size == 0
        assert dispatcher.pending_retries == 0
        assert dispatcher.requests_submitted == dispatcher.request_timeouts

    def test_flush_folds_pending_retry_back_in(self, sim):
        formed = []
        dispatcher = self._dispatcher(sim, formed)
        request = dispatcher.submit()
        sim.run(until=120.0)
        # Deadline fired at 100; the request now waits out its backoff.
        assert dispatcher.pending_retries == 1
        assert dispatcher.queue_size == 0
        dispatcher.flush()
        # The retry was folded back and formed — not silently dropped.
        assert dispatcher.pending_retries == 0
        assert len(formed) == 1
        assert formed[0].requests == [request]
        assert not request.timed_out

    def test_snapshot_refused_while_retry_pending(self, sim):
        dispatcher = self._dispatcher(sim, [])
        dispatcher.submit()
        sim.run(until=120.0)
        assert dispatcher.pending_retries == 1
        with pytest.raises(SnapshotError, match="retry"):
            dispatcher.to_state()
        dispatcher.flush()
        state = dispatcher.to_state()
        assert state["requests_submitted"] == 1

    def test_queue_increase_hook_fires_on_readmission(self, sim):
        dispatcher = self._dispatcher(sim, [])
        pokes = []
        dispatcher.on_queue_increase = lambda: pokes.append(sim.now)
        dispatcher.submit()
        sim.run(until=160.0)
        # Once at arrival, once when the backoff re-admitted it — the
        # wake-up a pull-batching chip server needs to resume service.
        assert pokes == [0.0, 150.0]

    def test_pending_retries_metric_exported(self, sim):
        dispatcher = self._dispatcher(sim, [])
        dispatcher.submit()
        sim.run(until=120.0)
        assert dispatcher.metrics()["pending_retries"] == 1.0


def _fair(sim, formed, tenants, admission=None):
    return FairShareDispatcher(
        sim, PullBatching(4), formed.append, tenants, admission=admission
    )


class TestFairShareDispatcher:
    def test_wdrr_shares_follow_weights(self, sim):
        """With every tenant backlogged, a weight-3 tenant takes 3 of
        every 4 slots regardless of how much the other submits."""
        formed = []
        dispatcher = _fair(
            sim, formed,
            [TenantShare("a", weight=3.0), TenantShare("b", weight=1.0)],
        )
        for _ in range(40):
            dispatcher.submit("b")  # the aggressor submits first
        for _ in range(30):
            dispatcher.submit("a")
        for _ in range(10):
            assert dispatcher.form_one() is not None
        assert dispatcher.batched_by_tenant == {"a": 30, "b": 10}
        for batch in formed:
            tenants = [request.tenant for request in batch.requests]
            assert tenants.count("a") == 3
            assert tenants.count("b") == 1

    def test_idle_tenant_forfeits_credit(self, sim):
        """Weights bound shares under contention, not reservations: a
        lone backlogged tenant gets every slot."""
        formed = []
        dispatcher = _fair(
            sim, formed,
            [TenantShare("a", weight=8.0), TenantShare("b", weight=1.0)],
        )
        for _ in range(8):
            dispatcher.submit("b")
        dispatcher.form_one()
        dispatcher.form_one()
        assert dispatcher.batched_by_tenant == {"a": 0, "b": 8}

    def test_per_tenant_admission_bound_isolates_shedding(self, sim):
        dispatcher = _fair(
            sim, [],
            [
                TenantShare("a", max_queue_requests=2),
                TenantShare("b", max_queue_requests=2),
            ],
        )
        for _ in range(5):
            dispatcher.submit("a")
        # Tenant a's flash crowd sheds its own overflow only.
        assert dispatcher.shed_by_tenant == {"a": 3, "b": 0}
        assert dispatcher.queue_size_for("a") == 2
        dispatcher.submit("b")
        assert dispatcher.shed_by_tenant["b"] == 0

    def test_per_tenant_deadline_times_out(self, sim):
        dispatcher = _fair(
            sim, [],
            [
                TenantShare("a", deadline_cycles=100.0),
                TenantShare("b"),  # no deadline: waits forever
            ],
        )
        dispatcher.submit("a")
        dispatcher.submit("b")
        sim.run()
        assert dispatcher.timed_out_by_tenant == {"a": 1, "b": 0}
        assert dispatcher.queue_size_for("b") == 1

    def test_unknown_tenant_rejected(self, sim):
        dispatcher = _fair(sim, [], [TenantShare("a")])
        with pytest.raises(ValueError, match="unknown tenant"):
            dispatcher.submit("ghost")

    def test_rejects_bad_tenant_sets(self, sim):
        with pytest.raises(ValueError, match="at least one"):
            _fair(sim, [], [])
        with pytest.raises(ValueError, match="duplicate"):
            _fair(sim, [], [TenantShare("a"), TenantShare("a")])

    def test_tenant_share_validation(self):
        with pytest.raises(ValueError):
            TenantShare("")
        with pytest.raises(ValueError):
            TenantShare("a", weight=0.0)
        with pytest.raises(ValueError):
            TenantShare("a", max_queue_requests=0)
        with pytest.raises(ValueError):
            TenantShare("a", deadline_cycles=-1.0)

    def test_snapshot_round_trip(self, sim):
        tenants = [TenantShare("a", weight=2.0), TenantShare("b")]
        dispatcher = _fair(sim, [], tenants)
        for _ in range(6):
            dispatcher.submit("a")
        dispatcher.submit("b")
        dispatcher.flush()
        state = dispatcher.to_state()
        restored = _fair(sim, [], tenants)
        restored.from_state(state)
        assert restored.to_state() == state
        assert restored.submitted_by_tenant == {"a": 6, "b": 1}

    def test_snapshot_rejects_tenant_mismatch(self, sim):
        dispatcher = _fair(sim, [], [TenantShare("a")])
        state = dispatcher.to_state()
        other = _fair(sim, [], [TenantShare("z")])
        with pytest.raises(ValueError, match="tenants"):
            other.from_state(state)


class _Bench:
    """Wired datapath + engines around one compiled model."""

    def __init__(self, sim, config, model, scheduler, training_model=None,
                 training_batch=8):
        compiler = TileCompiler(config, chunk_us=0.05)
        self.program = compiler.compile_inference(model)
        self.mmu = MatrixMultiplyUnit(sim, config)
        self.simd = SIMDUnit(sim, config)
        self.hbm = HBMInterface(sim, config)
        self.engine = InferenceEngine(
            sim, config, self.mmu, self.simd, self.program, scheduler
        )
        self.dispatcher = RequestDispatcher(
            sim, AdaptiveBatching(self.program.rows, timeout_cycles=1000),
            on_batch=self.engine.enqueue,
        )
        self.training = None
        if training_model is not None:
            train_prog = compiler.compile_training(
                training_model, batch=training_batch
            )
            self.training = TrainingEngine(
                sim, config, self.mmu, self.simd, self.hbm, train_prog,
                scheduler, inference_queue_size=lambda: self.dispatcher.queue_size,
            )
        self.mmu.set_policy(scheduler, lambda: self.dispatcher.queue_size)


class TestInferenceEngine:
    def test_batch_completes_and_records_latency(self, sim, small_config, tiny_model):
        bench = _Bench(sim, small_config, tiny_model, InferenceOnlyScheduler())
        for _ in range(bench.program.rows):
            bench.dispatcher.submit()
        sim.run()
        assert bench.engine.batches_completed == 1
        assert bench.engine.latency.count == bench.program.rows
        assert bench.engine.latency.max() > 0

    def test_latency_includes_formation_wait(self, sim, small_config, tiny_model):
        bench = _Bench(sim, small_config, tiny_model, InferenceOnlyScheduler())
        bench.dispatcher.submit()  # lone request waits for the timeout
        sim.run()
        assert bench.engine.latency.max() >= 1000

    def test_batches_complete_in_order(self, sim, small_config, tiny_model):
        bench = _Bench(sim, small_config, tiny_model, InferenceOnlyScheduler())
        for _ in range(3 * bench.program.rows):
            bench.dispatcher.submit()
        sim.run()
        assert bench.engine.batches_completed == 3

    def test_service_time_matches_analytic_chain(self, sim, small_config, tiny_model):
        """Unloaded batch latency = occupancy + drains + SIMD tails."""
        bench = _Bench(sim, small_config, tiny_model, InferenceOnlyScheduler())
        for _ in range(bench.program.rows):
            bench.dispatcher.submit()
        sim.run()
        drain = small_config.pipeline_drain_cycles
        expected = sum(
            step.mmu_cycles + drain + step.simd.cycles
            for step in bench.program.steps
        )
        assert bench.engine.latency.max() == pytest.approx(expected, rel=0.01)


class TestTrainingEngine:
    def test_completes_iterations_on_idle_machine(self, sim, small_config, tiny_model):
        bench = _Bench(
            sim, small_config, tiny_model, PriorityScheduler(16),
            training_model=tiny_model,
        )
        bench.training.start()
        sim.run(until=5e5)
        assert bench.training.iterations_completed >= 1

    def test_respects_allows_training(self, sim, small_config, tiny_model):
        bench = _Bench(
            sim, small_config, tiny_model, InferenceOnlyScheduler(),
            training_model=tiny_model,
        )
        bench.training.start()
        sim.run(until=1e5)
        assert bench.training.iterations_completed == 0

    def test_double_start_rejected(self, sim, small_config, tiny_model):
        bench = _Bench(
            sim, small_config, tiny_model, PriorityScheduler(16),
            training_model=tiny_model,
        )
        bench.training.start()
        with pytest.raises(RuntimeError):
            bench.training.start()

    def test_training_streams_weights_from_dram(self, sim, small_config, tiny_model):
        bench = _Bench(
            sim, small_config, tiny_model, PriorityScheduler(16),
            training_model=tiny_model,
        )
        bench.training.start()
        sim.run(until=5e5)
        assert bench.hbm.bytes_by_kind.get("train_stream", 0) > 0
        assert bench.hbm.bytes_by_kind.get("param_sync", 0) > 0

    def test_iterations_have_positive_duration(self, sim, small_config, tiny_model):
        bench = _Bench(
            sim, small_config, tiny_model, PriorityScheduler(16),
            training_model=tiny_model,
        )
        bench.training.start()
        sim.run(until=5e5)
        assert all(
            record.duration_cycles > 0 for record in bench.training.iterations
        )
