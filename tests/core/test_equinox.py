"""EquinoxAccelerator facade: installation, load runs, invariants."""

import pytest

from repro.core.equinox import EquinoxAccelerator
from repro.hw.config import AcceleratorConfig


@pytest.fixture
def config():
    # A small-but-realistic point: runs load sweeps in milliseconds.
    return AcceleratorConfig(name="bench", n=8, m=4, w=4, frequency_hz=1e9)


@pytest.fixture
def equinox(config, tiny_model):
    return EquinoxAccelerator(
        config, tiny_model, training_model=tiny_model, training_batch=8,
        chunk_us=0.05,
    )


class TestConstruction:
    def test_batch_slots_default_to_n(self, equinox, config):
        assert equinox.batch_slots == config.n

    def test_inference_weights_reserved(self, equinox, tiny_model):
        operand = equinox.config.encoding_info.bytes_per_operand
        assert equinox.weight_buffer.allocation_of("inference") == pytest.approx(
            tiny_model.weight_bytes(operand)
        )

    def test_training_gets_staging_sliver(self, equinox, config):
        staged = (
            equinox.weight_buffer.allocation_of("training")
            + equinox.activation_buffer.allocation_of("training")
        )
        assert staged == pytest.approx(config.staging_bytes)

    def test_training_with_inference_only_rejected(self, config, tiny_model):
        with pytest.raises(ValueError):
            EquinoxAccelerator(
                config, tiny_model, training_model=tiny_model,
                scheduler="inference_only",
            )

    def test_no_training_model_disables_training(self, config, tiny_model):
        acc = EquinoxAccelerator(config, tiny_model)
        assert acc.training_engine is None
        assert not acc.scheduler.allows_training

    def test_analytic_service_characteristics(self, equinox):
        assert equinox.batch_service_us() > 0
        assert equinox.capacity_requests_per_s() > 0
        assert equinox.peak_inference_top_s() > 0
        assert (
            equinox.peak_inference_top_s()
            <= equinox.config.peak_throughput_top_s
        )


class TestRuns:
    def test_run_completes_all_requests(self, equinox):
        report = equinox.run(load=0.5, requests=40)
        assert report.requests_completed >= 40
        assert report.requests_submitted >= report.requests_completed

    def test_rejects_nonpositive_load(self, equinox):
        with pytest.raises(ValueError):
            equinox.run(load=0.0)

    def test_report_invariants(self, equinox):
        report = equinox.run(load=0.6, requests=48)
        assert report.p99_latency_us >= report.mean_latency_us / 2
        assert report.max_latency_us >= report.p99_latency_us
        assert report.inference_top_s <= equinox.config.peak_throughput_top_s
        assert sum(report.cycle_breakdown.values()) == pytest.approx(1.0)
        assert 0 <= report.dram_utilization <= 1

    def test_meets_target_helper(self, equinox):
        report = equinox.run(load=0.3, requests=24)
        assert report.meets_target(1e12)
        assert not report.meets_target(0.0)

    def test_training_harvests_at_low_load(self, equinox):
        report = equinox.run(load=0.2, requests=40)
        assert report.training_top_s > 0

    def test_run_idle_trains_at_full_tilt(self, config, tiny_model):
        acc = EquinoxAccelerator(
            config, tiny_model, training_model=tiny_model, training_batch=8,
            chunk_us=0.05,
        )
        report = acc.run_idle(duration_s=2e-4)
        assert report.training_top_s > 0
        assert report.requests_completed == 0

    def test_run_idle_rejects_bad_duration(self, equinox):
        with pytest.raises(ValueError):
            equinox.run_idle(0.0)

    def test_deterministic_given_seed(self, config, tiny_model):
        reports = []
        for _ in range(2):
            acc = EquinoxAccelerator(
                config, tiny_model, training_model=tiny_model,
                training_batch=8, chunk_us=0.05,
            )
            reports.append(acc.run(load=0.5, requests=32, seed=42))
        assert reports[0].p99_latency_us == reports[1].p99_latency_us
        assert reports[0].training_top_s == reports[1].training_top_s

    def test_different_seeds_differ(self, config, tiny_model):
        values = set()
        for seed in (1, 2):
            acc = EquinoxAccelerator(
                config, tiny_model, training_model=tiny_model,
                training_batch=8, chunk_us=0.05,
            )
            values.add(acc.run(load=0.5, requests=32, seed=seed).p99_latency_us)
        assert len(values) == 2


class TestSchedulingBehaviour:
    def _run(self, config, tiny_model, scheduler, load):
        acc = EquinoxAccelerator(
            config, tiny_model,
            training_model=tiny_model if scheduler != "inference_only" else None,
            scheduler=scheduler, training_batch=8, chunk_us=0.05,
        )
        return acc.run(load=load, requests=64, seed=3)

    def test_priority_protects_latency_vs_fair_at_high_load(
        self, config, tiny_model
    ):
        fair = self._run(config, tiny_model, "fair", load=0.9)
        priority = self._run(config, tiny_model, "priority", load=0.9)
        assert priority.p99_latency_us <= fair.p99_latency_us

    def test_training_inflates_latency_at_low_load(self, config, tiny_model):
        """Figure 10: both policies stretch inference service time at
        low load by round-robining training into the issue slots."""
        alone = self._run(config, tiny_model, "inference_only", load=0.3)
        with_training = self._run(config, tiny_model, "priority", load=0.3)
        assert with_training.mean_latency_us >= alone.mean_latency_us

    def test_software_scheduler_trains_less_than_hardware(
        self, config, tiny_model
    ):
        software = self._run(config, tiny_model, "software", load=0.6)
        hardware = self._run(config, tiny_model, "priority", load=0.6)
        assert software.training_top_s <= hardware.training_top_s
