"""Request and batch records."""

import pytest

from repro.core.requests import Batch, InferenceRequest, TrainingIterationRecord


class TestInferenceRequest:
    def test_latency_requires_completion(self):
        request = InferenceRequest(request_id=0, arrival_cycle=10.0)
        with pytest.raises(ValueError):
            _ = request.latency_cycles

    def test_latency_computed(self):
        request = InferenceRequest(request_id=0, arrival_cycle=10.0)
        request.completion_cycle = 35.0
        assert request.latency_cycles == 25.0

    def test_formation_wait(self):
        request = InferenceRequest(request_id=0, arrival_cycle=10.0)
        request.batched_cycle = 18.0
        assert request.formation_wait_cycles == 8.0


class TestBatch:
    def test_dummy_count(self):
        requests = [InferenceRequest(i, 0.0) for i in range(3)]
        batch = Batch(batch_id=0, requests=requests, slots=8)
        assert batch.real_count == 3
        assert batch.dummy_count == 5
        assert batch.is_padded

    def test_full_batch_unpadded(self):
        requests = [InferenceRequest(i, 0.0) for i in range(4)]
        batch = Batch(batch_id=0, requests=requests, slots=4)
        assert not batch.is_padded

    def test_complete_stamps_all_requests(self):
        requests = [InferenceRequest(i, float(i)) for i in range(3)]
        batch = Batch(batch_id=0, requests=requests, slots=4)
        batch.complete(100.0)
        assert batch.completion_cycle == 100.0
        assert [r.latency_cycles for r in requests] == [100.0, 99.0, 98.0]


class TestTrainingRecord:
    def test_duration(self):
        record = TrainingIterationRecord(0, start_cycle=10.0,
                                         completion_cycle=110.0, useful_ops=5.0)
        assert record.duration_cycles == 100.0
