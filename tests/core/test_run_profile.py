"""Time-varying load profiles through one persistent accelerator."""

import math

import pytest

from repro.core.equinox import EquinoxAccelerator
from repro.hw.config import AcceleratorConfig


@pytest.fixture
def equinox(tiny_model):
    config = AcceleratorConfig(name="bench", n=8, m=4, w=4, frequency_hz=1e9)
    return EquinoxAccelerator(
        config, tiny_model, training_model=tiny_model, training_batch=8,
        chunk_us=0.05,
    )


class TestRunProfile:
    def test_one_report_per_bucket(self, equinox):
        reports = equinox.run_profile([0.3, 0.6, 0.3], dwell_s=2e-5)
        assert len(reports) == 3
        assert [r.load for r in reports] == [0.3, 0.6, 0.3]

    def test_windows_cover_dwell(self, equinox):
        dwell = 2e-5
        reports = equinox.run_profile([0.5, 0.5], dwell_s=dwell)
        for report in reports:
            assert report.duration_s == pytest.approx(dwell, rel=0.01)

    def test_arrivals_scale_with_load(self, equinox):
        reports = equinox.run_profile([0.2, 0.8], dwell_s=5e-5)
        assert reports[1].requests_submitted > 2 * reports[0].requests_submitted

    def test_zero_load_bucket_trains_only(self, equinox):
        reports = equinox.run_profile([0.0, 0.5], dwell_s=3e-5)
        assert reports[0].requests_submitted == 0
        assert math.isnan(reports[0].p99_latency_us)
        assert reports[0].training_top_s > 0
        assert reports[1].requests_submitted > 0

    def test_spike_throttles_training_then_recovers(self, equinox):
        # One overload bucket, then enough low-load buckets to drain
        # the backlog it built.
        reports = equinox.run_profile(
            [0.2, 0.2, 1.1] + [0.2] * 5, dwell_s=4e-5, seed=3
        )
        base = reports[1].training_top_s
        spike = reports[2].training_top_s
        after = reports[-1].training_top_s
        assert spike < 0.5 * base  # guard throttles the harvest
        assert after > 0.5 * base  # round-robin resumes post-spike

    def test_rejects_bad_inputs(self, equinox):
        with pytest.raises(ValueError):
            equinox.run_profile([], dwell_s=1e-5)
        with pytest.raises(ValueError):
            equinox.run_profile([0.5], dwell_s=0)
