"""Instruction-controller scheduling policies."""

import pytest

from repro.core.scheduler import (
    FairScheduler,
    InferenceOnlyScheduler,
    PriorityScheduler,
    SoftwareScheduler,
    make_scheduler,
)


class TestPriorityScheduler:
    @pytest.fixture
    def policy(self):
        return PriorityScheduler(queue_threshold=10)

    def test_round_robin_below_threshold(self, policy):
        assert policy.select_queue(True, True, 5, "inference") == "training"
        assert policy.select_queue(True, True, 5, "training") == "inference"

    def test_spike_dedicates_to_inference(self, policy):
        assert policy.select_queue(True, True, 11, "training") == "inference"
        assert policy.select_queue(True, True, 11, "inference") == "inference"

    def test_training_alone_allowed_when_calm(self, policy):
        assert policy.select_queue(False, True, 0, "inference") == "training"

    def test_training_alone_held_during_spike(self, policy):
        """During a spike the controller holds every resource for the
        inference requests about to issue (paper §3.2)."""
        assert policy.select_queue(False, True, 11, "inference") is None

    def test_inference_alone(self, policy):
        assert policy.select_queue(True, False, 0, "training") == "inference"

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            PriorityScheduler(queue_threshold=0)


class TestFairScheduler:
    def test_always_alternates(self):
        policy = FairScheduler()
        assert policy.select_queue(True, True, 10**6, "inference") == "training"
        assert policy.select_queue(True, True, 10**6, "training") == "inference"

    def test_single_ready_queue(self):
        policy = FairScheduler()
        assert policy.select_queue(True, False, 0, "training") == "inference"
        assert policy.select_queue(False, True, 0, "inference") == "training"

    def test_nothing_ready(self):
        assert FairScheduler().select_queue(False, False, 0, "inference") is None


class TestInferenceOnly:
    def test_never_training(self):
        policy = InferenceOnlyScheduler()
        assert not policy.allows_training
        assert policy.select_queue(False, True, 0, "inference") is None
        assert policy.select_queue(True, True, 0, "training") == "inference"


class TestSoftwareScheduler:
    def test_commit_requires_empty_queue(self):
        policy = SoftwareScheduler(decision_latency_cycles=100)
        assert not policy.can_commit_training_block(1, now=1e6)

    def test_commit_requires_quiet_interval(self):
        policy = SoftwareScheduler(decision_latency_cycles=100)
        policy.note_inference_activity(1000.0)
        assert not policy.can_commit_training_block(0, now=1050.0)
        assert policy.can_commit_training_block(0, now=1100.0)

    def test_greedy_mode_skips_quiet_check(self):
        policy = SoftwareScheduler(decision_latency_cycles=100, conservative=False)
        policy.note_inference_activity(1000.0)
        assert policy.can_commit_training_block(0, now=1001.0)

    def test_blocks_are_not_preemptable(self):
        assert SoftwareScheduler(10).training_blocks_preemption()

    def test_grants_fifo(self):
        policy = SoftwareScheduler(10)
        assert policy.select_queue(True, True, 0, "training") == "inference"

    def test_rejects_bad_latency(self):
        with pytest.raises(ValueError):
            SoftwareScheduler(decision_latency_cycles=0)


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("priority", PriorityScheduler),
            ("fair", FairScheduler),
            ("inference_only", InferenceOnlyScheduler),
            ("software", SoftwareScheduler),
        ],
    )
    def test_builds_each_kind(self, kind, cls):
        assert isinstance(make_scheduler(kind, queue_threshold=5), cls)

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_scheduler("lottery")
