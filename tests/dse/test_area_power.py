"""Area (Eq. 1) and power (Eq. 2) models."""

import pytest

from repro.dse.area import accelerator_area_mm2, alu_area_mm2, fits_die
from repro.dse.power import (
    accelerator_power_w,
    fits_power,
    sram_bytes_per_cycle,
)
from repro.dse.tech import TSMC28


class TestArea:
    def test_eq1_terms(self):
        breakdown = accelerator_area_mm2(4, 2, 2, "hbfp8")
        alus = 2 * 16 * 2
        assert breakdown.alu_mm2 == pytest.approx(
            alus * TSMC28.encoding_costs("hbfp8").alu_area_um2 / 1e6
        )
        assert breakdown.sram_mm2 == TSMC28.sram_area_mm2
        assert breakdown.dram_mm2 == TSMC28.dram_area_mm2
        assert breakdown.total_mm2 == pytest.approx(
            breakdown.alu_mm2 + breakdown.sram_mm2 + breakdown.dram_mm2
        )

    def test_area_scales_linearly_in_alus(self):
        assert alu_area_mm2(4, 4, 4, "hbfp8") == pytest.approx(
            2 * alu_area_mm2(4, 2, 4, "hbfp8")
        )

    def test_small_designs_fit(self):
        assert fits_die(4, 2, 2, "hbfp8")

    def test_huge_designs_rejected(self):
        assert not fits_die(256, 64, 64, "hbfp8")

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            alu_area_mm2(0, 1, 1, "hbfp8")


class TestPower:
    def test_eq2_access_terms(self):
        # w·n activations + m·w·n weights + m·n outputs, per cycle.
        assert sram_bytes_per_cycle(4, 2, 3, operand_bytes=1.0) == (
            3 * 4 + 2 * 3 * 4 + 2 * 4
        )

    def test_bfloat16_doubles_traffic(self):
        assert sram_bytes_per_cycle(4, 2, 3, 2.0) == 2 * sram_bytes_per_cycle(
            4, 2, 3, 1.0
        )

    def test_total_includes_static_and_dram(self):
        power = accelerator_power_w(4, 2, 2, 1e9, "hbfp8")
        assert power.dram_w == TSMC28.dram_power_w
        assert power.sram_static_w == TSMC28.sram_static_w
        assert power.total_w > power.alu_w

    def test_power_grows_with_frequency(self):
        low = accelerator_power_w(8, 4, 4, 532e6, "hbfp8").total_w
        high = accelerator_power_w(8, 4, 4, 1200e6, "hbfp8").total_w
        assert high > low

    def test_data_movement_fraction_falls_with_n(self):
        """The §4.2 mechanism: batching (larger n) amortizes buffer
        energy, freeing power for ALUs."""
        small_n = accelerator_power_w(1, 64, 8, 532e6, "hbfp8")
        large_n = accelerator_power_w(64, 1, 8, 532e6, "hbfp8")
        assert (
            large_n.data_movement_fraction < small_n.data_movement_fraction
        )

    def test_fits_power_boundary(self):
        assert fits_power(1, 1, 1, 532e6, "hbfp8")
        assert not fits_power(128, 32, 32, 2400e6, "hbfp8")

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            accelerator_power_w(0, 1, 1, 1e9, "hbfp8")
