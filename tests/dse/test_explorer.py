"""Design-space sweep and Pareto extraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dse.explorer import DesignPoint, DesignSpaceExplorer
from repro.dse.pareto import dominates, pareto_frontier
from repro.dse.tech import TSMC28


@pytest.fixture(scope="module")
def small_sweep():
    explorer = DesignSpaceExplorer(
        "hbfp8", n_values=[1, 2, 4, 8, 16, 32, 64, 128],
        frequencies_hz=[532e6, 610e6, 1000e6],
    )
    return explorer, explorer.sweep()


class TestFeasibility:
    def test_all_points_within_envelopes(self, small_sweep):
        _, points = small_sweep
        assert points, "sweep found no feasible designs"
        for p in points:
            assert p.area_mm2 <= TSMC28.die_area_mm2 + 1e-6
            assert p.power_w <= TSMC28.power_budget_w + 1e-6

    def test_m_is_maximal(self, small_sweep):
        """Growing any point's m by one must violate an envelope."""
        from repro.dse.area import fits_die
        from repro.dse.power import fits_power

        _, points = small_sweep
        for p in points[:: max(1, len(points) // 20)]:
            grown_ok = fits_die(p.n, p.m + 1, p.w, "hbfp8") and fits_power(
                p.n, p.m + 1, p.w, p.frequency_hz, "hbfp8"
            )
            assert not grown_ok

    def test_bound_labels_consistent(self, small_sweep):
        _, points = small_sweep
        assert {p.bound for p in points} <= {"area", "power"}

    def test_to_config_roundtrip(self, small_sweep):
        _, points = small_sweep
        config = points[0].to_config("probe")
        assert config.n == points[0].n
        assert config.peak_throughput_top_s == pytest.approx(
            points[0].throughput_top_s
        )

    def test_best_at_returns_max_throughput(self, small_sweep):
        explorer, _ = small_sweep
        candidates = explorer.points_at(8, 610e6)
        best = explorer.best_at(8, 610e6)
        assert best.throughput_top_s == max(
            p.throughput_top_s for p in candidates
        )

    def test_rejects_bad_sweep_ranges(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer("hbfp8", n_values=[0])


class TestPareto:
    def test_frontier_is_nondominated(self, small_sweep):
        _, points = small_sweep
        frontier = pareto_frontier(points)
        for a in frontier:
            assert not any(dominates(b, a) for b in points)

    def test_frontier_monotone(self, small_sweep):
        _, points = small_sweep
        frontier = pareto_frontier(points)
        for earlier, later in zip(frontier, frontier[1:]):
            assert later.service_time_us >= earlier.service_time_us
            assert later.throughput_top_s > earlier.throughput_top_s

    def test_every_point_dominated_or_on_frontier(self, small_sweep):
        _, points = small_sweep
        frontier = set(id(p) for p in pareto_frontier(points))
        for p in points[:: max(1, len(points) // 30)]:
            if id(p) not in frontier:
                assert any(
                    dominates(f, p) or (
                        f.throughput_top_s >= p.throughput_top_s
                        and f.service_time_us <= p.service_time_us
                    )
                    for f in pareto_frontier(points)
                )

    @given(
        st.lists(
            st.tuples(st.floats(1, 500), st.floats(1, 5000)),
            min_size=1, max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_frontier_property(self, raw):
        points = [
            DesignPoint(
                n=1, m=1, w=1, frequency_hz=1e9, encoding="hbfp8",
                throughput_top_s=t, service_time_us=s,
                area_mm2=0, power_w=0, bound="power",
            )
            for t, s in raw
        ]
        frontier = pareto_frontier(points)
        assert frontier
        for a in frontier:
            assert not any(dominates(b, a) for b in points)
