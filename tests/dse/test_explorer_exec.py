"""Vectorized feasibility scan and executor-fanned sweep parity.

The explorer's `_max_m_grid` replaces a per-width scalar loop with one
numpy pass, and `sweep(executor=...)` fans the n grid out as jobs; both
must reproduce the historical output *exactly* — the Pareto frontier
and Table 1 picks are downstream of every single point.
"""

import pytest

from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.pareto import pareto_frontier
from repro.exec import JobRunner


@pytest.fixture(scope="module")
def explorer():
    return DesignSpaceExplorer(
        "hbfp8", n_values=[1, 3, 8, 17, 32, 64, 128, 256],
        frequencies_hz=[532e6, 610e6, 1000e6],
    )


class TestVectorizedFeasibility:
    def test_grid_matches_scalar_everywhere(self, explorer):
        """Every (n, f, w): the vector path lands on the scalar result,
        bit for bit (same m, same binding envelope)."""
        for n in explorer.n_values:
            for f in explorer.frequencies_hz:
                grid = explorer._max_m_grid(n, f)
                scalar = [
                    explorer._max_m(n, w, f) for w in explorer.w_values
                ]
                assert grid == scalar, f"divergence at n={n}, f={f:g}"

    def test_bfloat16_grid_matches_scalar(self):
        explorer = DesignSpaceExplorer(
            "bfloat16", n_values=[2, 16, 96], frequencies_hz=[532e6, 1000e6]
        )
        for n in explorer.n_values:
            for f in explorer.frequencies_hz:
                assert explorer._max_m_grid(n, f) == [
                    explorer._max_m(n, w, f) for w in explorer.w_values
                ]

    def test_evaluate_memo_returns_identical_points(self, explorer):
        n, f = 32, 532e6
        first = explorer.points_at(n, f)
        second = explorer.points_at(n, f)
        assert first == second
        # Memoized: the very same objects come back.
        assert all(a is b for a, b in zip(first, second))


class TestExecutorSweep:
    def test_fanned_sweep_identical_to_serial(self, explorer):
        serial = explorer.sweep()
        for chunk in (1, 3, 8):
            fanned = explorer.sweep(executor=JobRunner(jobs=1), chunk=chunk)
            assert fanned == serial, f"chunk={chunk} diverged"

    def test_pareto_frontier_unchanged(self, explorer):
        serial = pareto_frontier(explorer.sweep())
        fanned = pareto_frontier(
            explorer.sweep(executor=JobRunner(jobs=1), chunk=4)
        )
        assert serial == fanned

    def test_non_default_tech_stays_serial(self):
        """A custom technology model is not expressible as job config;
        the sweep must fall back to the serial path, not crash."""
        from repro.dse.tech import TSMC28
        from dataclasses import replace

        tweaked = replace(TSMC28, die_area_mm2=TSMC28.die_area_mm2 / 2)
        explorer = DesignSpaceExplorer(
            "hbfp8", tech=tweaked, n_values=[4, 8],
            frequencies_hz=[532e6],
        )
        fanned = explorer.sweep(executor=JobRunner(jobs=1))
        assert fanned == explorer.sweep()

    def test_bad_chunk_rejected(self, explorer):
        with pytest.raises(ValueError, match="chunk"):
            explorer.sweep(executor=JobRunner(jobs=1), chunk=0)
