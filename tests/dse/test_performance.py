"""Performance model (Eq. 3) and the closed-form service time."""

import pytest

from repro.dse.performance import (
    lstm_step_occupancy_cycles,
    lstm_step_utilization,
    peak_throughput_top_s,
    service_time_cycles,
    service_time_us,
)
from repro.hw.config import AcceleratorConfig
from repro.models.compiler import compile_inference
from repro.models.lstm import deepbench_lstm


class TestEq3:
    def test_formula(self):
        assert peak_throughput_top_s(4, 2, 2, 1e9) == pytest.approx(
            2 * 2 * 16 * 2 * 1e9 / 1e12
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            peak_throughput_top_s(0, 1, 1, 1e9)


class TestServiceTime:
    def test_matches_compiler_occupancy(self):
        """The sweep's closed form and the tile compiler must agree on
        per-step MMU occupancy for the probe LSTM."""
        config = AcceleratorConfig(name="p", n=16, m=8, w=4, frequency_hz=610e6)
        program = compile_inference(deepbench_lstm(), config)
        closed_form = 25 * lstm_step_occupancy_cycles(16, 8, 4)
        assert program.total_mmu_cycles == pytest.approx(closed_form)

    def test_matches_facade_service_time(self):
        """The closed form tracks the facade's analytic chain (both add
        drain and SIMD tails) within a few percent."""
        from repro.core.equinox import EquinoxAccelerator

        config = AcceleratorConfig(
            name="p", n=16, m=8, w=4, frequency_hz=610e6,
        )
        facade = EquinoxAccelerator(config, deepbench_lstm())
        closed = service_time_cycles(16, 8, 4, simd_lanes=config.simd_lanes)
        assert facade.batch_service_cycles() == pytest.approx(closed, rel=0.02)

    def test_us_conversion(self):
        cycles = service_time_cycles(8, 4, 4)
        assert service_time_us(8, 4, 4, 1e9) == pytest.approx(cycles / 1e3)

    def test_latency_grows_with_n_at_fixed_alus(self):
        # Same ALU count, deeper batching -> longer service time.
        t_small = service_time_us(8, 64, 4, 610e6)
        t_large = service_time_us(64, 1, 4, 610e6)
        assert t_large > t_small

    def test_utilization_in_unit_interval(self):
        for n, m, w in [(1, 100, 8), (16, 16, 4), (143, 2, 8)]:
            assert 0 < lstm_step_utilization(n, m, w) <= 1.0

    def test_exact_tiling_full_utilization(self):
        # n·w divides 2048 and m·n divides 8192: no padding.
        assert lstm_step_utilization(16, 32, 8) == pytest.approx(1.0)
