"""Table 1 selections: the paper's shape claims, asserted."""

import pytest

from repro.dse.table1 import (
    equinox_configuration,
    frontier,
    pareto_table,
    select_design,
)


@pytest.fixture(scope="module")
def hbfp8_table():
    return pareto_table("hbfp8")


@pytest.fixture(scope="module")
def bf16_table():
    return pareto_table("bfloat16")


class TestHbfp8Shape:
    def test_min_latency_is_unbatched(self, hbfp8_table):
        assert hbfp8_table["min"].n == 1

    def test_min_latency_picks_floor_frequency(self, hbfp8_table):
        # SRAM-power-bound designs settle at 532 MHz (paper Table 1).
        assert hbfp8_table["min"].frequency_mhz == pytest.approx(532)

    def test_relaxed_designs_pick_610(self, hbfp8_table):
        assert hbfp8_table["500us"].frequency_mhz == pytest.approx(610)
        assert hbfp8_table["none"].frequency_mhz == pytest.approx(610)

    def test_service_times_respect_bounds(self, hbfp8_table):
        assert hbfp8_table["50us"].service_time_us <= 50.0
        assert hbfp8_table["500us"].service_time_us <= 500.0

    def test_throughput_ordering(self, hbfp8_table):
        t = {k: v.throughput_top_s for k, v in hbfp8_table.items()}
        assert t["min"] < t["50us"] < t["500us"] <= t["none"]

    def test_500us_gain_near_6x(self, hbfp8_table):
        # Paper: 6.67x. Shape check: 5x-8x.
        ratio = (
            hbfp8_table["500us"].throughput_top_s
            / hbfp8_table["min"].throughput_top_s
        )
        assert 5.0 <= ratio <= 8.0

    def test_50us_gain_near_5x(self, hbfp8_table):
        # Paper: 5.53x. Shape check: 4x-7x.
        ratio = (
            hbfp8_table["50us"].throughput_top_s
            / hbfp8_table["min"].throughput_top_s
        )
        assert 4.0 <= ratio <= 7.0

    def test_relaxed_designs_use_moderate_batching(self, hbfp8_table):
        # n in the hundreds, far from both extremes (paper §4.2).
        assert 100 <= hbfp8_table["500us"].n <= 256

    def test_absolute_throughputs_near_paper(self, hbfp8_table):
        assert hbfp8_table["min"].throughput_top_s == pytest.approx(60.2, rel=0.15)
        assert hbfp8_table["500us"].throughput_top_s == pytest.approx(390, rel=0.1)


class TestBfloat16Shape:
    def test_cannot_batch_below_50us(self, bf16_table):
        """bfloat16's knee comes immediately: the sub-50µs class is the
        unbatched design (the merged row of the paper's Table 1)."""
        assert bf16_table["50us"].n <= 2
        assert bf16_table["50us"].throughput_top_s == pytest.approx(
            bf16_table["min"].throughput_top_s, rel=0.1
        )

    def test_absolute_throughputs_near_paper(self, bf16_table):
        assert bf16_table["min"].throughput_top_s == pytest.approx(23.9, rel=0.1)
        assert bf16_table["none"].throughput_top_s == pytest.approx(66.7, rel=0.1)

    def test_hbfp8_advantage_5x_plus(self, hbfp8_table, bf16_table):
        ratio = (
            hbfp8_table["500us"].throughput_top_s
            / bf16_table["500us"].throughput_top_s
        )
        assert 4.5 <= ratio <= 7.5


class TestSelection:
    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError):
            select_design("1ms")

    def test_configuration_materialization(self):
        config = equinox_configuration("min")
        assert config.name == "equinox_min"
        assert config.encoding == "hbfp8"
        assert config.n == 1

    def test_configuration_encoding_suffix(self):
        config = equinox_configuration("min", "bfloat16")
        assert config.name == "equinox_min_bfloat16"

    def test_table_picks_lie_on_frontier(self, hbfp8_table):
        front = {
            (p.n, p.m, p.w, p.frequency_hz) for p in frontier("hbfp8")
        }
        for name in ("min", "none"):
            p = hbfp8_table[name]
            assert (p.n, p.m, p.w, p.frequency_hz) in front
