"""Technology model: voltage curve, unit energies, budgets."""

import pytest

from repro.dse.tech import (
    F_MAX_HZ,
    F_MIN_HZ,
    FREQUENCY_GRID_HZ,
    TSMC28,
    V_MIN,
    V_NOM,
)


class TestVoltageCurve:
    def test_endpoints(self):
        assert TSMC28.supply_voltage(F_MIN_HZ) == pytest.approx(V_MIN)
        assert TSMC28.supply_voltage(F_MAX_HZ) == pytest.approx(V_NOM)

    def test_monotone_over_grid(self):
        voltages = [TSMC28.supply_voltage(f) for f in FREQUENCY_GRID_HZ]
        assert voltages == sorted(voltages)

    def test_steep_near_threshold(self):
        """The first step up from the floor costs proportionally more
        voltage than a step near nominal — what pins SRAM-bound designs
        at 532 MHz (Table 1)."""
        low_slope = (
            TSMC28.supply_voltage(610e6) - TSMC28.supply_voltage(532e6)
        ) / (610e6 - 532e6)
        high_slope = (
            TSMC28.supply_voltage(2400e6) - TSMC28.supply_voltage(2000e6)
        ) / (2400e6 - 2000e6)
        assert low_slope > high_slope

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TSMC28.supply_voltage(100e6)

    def test_energy_scale_quadratic_in_voltage(self):
        for f in FREQUENCY_GRID_HZ:
            v = TSMC28.supply_voltage(f)
            assert TSMC28.energy_scale(f) == pytest.approx((v / V_NOM) ** 2)


class TestUnitCosts:
    def test_bfloat16_alus_denser_penalty(self):
        """Fixed point enjoys a large density advantage over floating
        point (paper §2.1): ~6x in both area and energy here."""
        hbfp = TSMC28.encoding_costs("hbfp8")
        bf16 = TSMC28.encoding_costs("bfloat16")
        assert 4 <= bf16.alu_area_um2 / hbfp.alu_area_um2 <= 8
        assert 4 <= bf16.alu_energy_nominal_j / hbfp.alu_energy_nominal_j <= 8

    def test_unknown_encoding_rejected(self):
        with pytest.raises(KeyError):
            TSMC28.encoding_costs("fp64")

    def test_energies_scale_with_frequency(self):
        low = TSMC28.alu_energy_j("hbfp8", 532e6)
        high = TSMC28.alu_energy_j("hbfp8", 2400e6)
        assert high > low
        assert high == pytest.approx(0.54e-12)

    def test_sram_energy_dominates_alu_at_floor(self):
        """e_sram ≈ 5-7x e_alu(hbfp8): the ratio that creates the ~6.6x
        n=1 -> n=inf throughput span of Table 1."""
        e_alu = TSMC28.alu_energy_j("hbfp8", 532e6)
        e_byte = TSMC28.sram_energy_j_per_byte(532e6)
        assert 5 <= e_byte / e_alu <= 8


class TestBudgets:
    def test_die_split_leaves_alu_area(self):
        assert TSMC28.alu_area_budget_mm2() == pytest.approx(
            300.0 - TSMC28.sram_area_mm2 - 46.9
        )
        assert TSMC28.alu_area_budget_mm2() > 150

    def test_power_split_leaves_dynamic_budget(self):
        assert TSMC28.dynamic_power_budget_w() == pytest.approx(
            75.0 - 28.6 - TSMC28.sram_static_w
        )

    def test_sram_area_near_table3(self):
        # 70 MB of weight+activation buffers -> ~64 mm² in Table 3.
        assert 70 * TSMC28.sram_area_mm2_per_mb == pytest.approx(64.2, rel=0.02)
