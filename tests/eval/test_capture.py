"""ExperimentCapture: the experiment-level observability aggregate."""

import json

import pytest

from repro.eval import runner
from repro.eval.runner import ExperimentCapture, capture_run
from repro.obs.report import validate_report


class TestCaptureRun:
    def test_context_sets_and_clears_the_active_capture(self):
        assert runner._ACTIVE_CAPTURE is None
        with capture_run("unit") as capture:
            assert runner._ACTIVE_CAPTURE is capture
        assert runner._ACTIVE_CAPTURE is None

    def test_captures_do_not_nest(self):
        with capture_run("outer"):
            with pytest.raises(RuntimeError):
                with capture_run("inner"):
                    pass

    def test_cleared_even_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with capture_run("unit"):
                raise RuntimeError("boom")
        assert runner._ACTIVE_CAPTURE is None


class TestEmptyCapture:
    def test_empty_report_is_schema_valid_with_null_latency(self):
        report = ExperimentCapture("empty").build_report()
        assert report.latency_us == {
            "p50": None, "p99": None, "mean": None, "max": None
        }
        assert validate_report(json.loads(report.to_json())) == []
        assert report.config["windows"] == 0


class TestObservedCapture:
    @pytest.fixture(scope="class")
    def observed(self):
        accelerator = runner.build_accelerator("500us")
        capture = ExperimentCapture("unit")
        accelerator.run(load=0.5, requests=64, seed=3)
        capture.observe(accelerator)
        return capture, accelerator

    def test_report_carries_the_headline_quantities(self, observed):
        capture, _ = observed
        report = capture.build_report()
        assert validate_report(json.loads(report.to_json())) == []
        assert report.latency_us["p99"] > 0
        assert report.throughput_top_s["inference"] > 0
        assert abs(sum(report.cycle_breakdown.values()) - 1.0) < 1e-6

    def test_reobserving_does_not_double_count(self, observed):
        """Cumulative collectors are read as deltas keyed by accelerator
        identity: observing twice with no new work changes nothing."""
        capture, accelerator = observed
        count = capture.latency_us.count
        ops = dict(capture.ops)
        capture.observe(accelerator)
        assert capture.latency_us.count == count
        assert capture.ops == ops
