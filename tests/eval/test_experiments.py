"""Harness smoke tests: each experiment runs and renders at small scale."""

import pytest

from repro.eval import fig2, fig6, fig7, fig8, fig9, fig10, fig11
from repro.eval import table1, table2, table3
from repro.eval.report import render_series, render_table
from repro.eval.runner import build_accelerator, latency_target_us


class TestReport:
    def test_render_table_aligns(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[2:]}) == 1

    def test_render_series(self):
        text = render_series("S", "x", [1, 2], {"y": [3.0, 4.0]})
        assert "x" in text and "y" in text

    def test_nan_renders_as_dash(self):
        text = render_table("T", ["v"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]


class TestRunner:
    def test_build_accelerator_defaults(self):
        acc = build_accelerator("min")
        assert acc.config.name == "equinox_min"
        assert acc.training_engine is None

    def test_latency_target_is_10x_service(self):
        reference = build_accelerator("500us")
        assert latency_target_us() == pytest.approx(
            10 * reference.batch_service_us()
        )


class TestAnalyticExperiments:
    def test_table1_runs_and_renders(self):
        result = table1.run()
        text = table1.render(result)
        assert "Table 1" in text
        assert result.throughput_ratio("hbfp8", "500us") > 4

    def test_table3_runs_and_renders(self):
        result = table3.run()
        text = table3.render(result)
        assert "MMU" in text
        assert result.overheads["controller_area_overhead"] < 0.01

    def test_fig6_runs_and_renders(self):
        result = fig6.run()
        text = fig6.render(result)
        assert "Pareto" in text
        assert result.max_throughput("hbfp8") > 4 * result.max_throughput(
            "bfloat16"
        )


class TestSimulationExperiments:
    def test_fig7_small(self):
        result = fig7.run(loads=(0.3, 0.9), batches=4, encodings=("hbfp8",))
        assert "hbfp8" in result.curves
        assert len(result.curves["hbfp8"]["500us"]) == 2
        assert "Figure 7" in fig7.render(result)

    def test_fig8_small(self):
        result = fig8.run(loads=(0.1, 0.9), batches=4)
        text = fig8.render(result)
        assert "Figure 8" in text
        assert result.idle_reclaimed(0.1) > 0

    def test_fig9_small(self):
        result = fig9.run(loads=(0.3, 0.9), classes=("min", "500us"), batches=4)
        assert result.dedicated_top_s > 0
        assert result.curves["500us"][0] > result.curves["min"][0]
        assert "Figure 9" in fig9.render(result)

    def test_fig10_small(self):
        result = fig10.run(loads=(0.3, 0.9), batches=4)
        assert set(result.curves) == {
            "Inf", "Inf+Train+Fair", "Inf+Train+Priority"
        }
        assert "Figure 10" in fig10.render(result)

    def test_fig11_small(self):
        result = fig11.run(loads=(0.08, 0.9), thresholds=(2.0, 10.0), batches=4)
        assert result.adaptive_meets_at_low_load()
        assert result.static_violates_at_low_load()
        assert "Figure 11a" in fig11.render(result)

    def test_table2_small(self):
        result = table2.run(gru_steps=40, resnet_side=64)
        assert set(result.rows) == {"lstm", "gru", "resnet50"}
        assert all(v[1] > 0 for v in result.rows.values())
        assert "Table 2" in table2.render(result)


class TestSpike:
    def test_runs_and_renders(self):
        from repro.eval import spike

        result = spike.run(buckets=6, spike_start=2, spike_len=1,
                           dwell_s=0.002)
        text = spike.render(result)
        assert "Spike response" in text
        assert result.training_drop() > 0.0


class TestFig2:
    def test_runs_and_renders(self):
        result = fig2.run(epochs=3, lm_epochs=2)
        text = fig2.render(result)
        assert "Figure 2a" in text and "Figure 2b" in text
        assert result.final_error_gap() < 15.0
        assert 0.5 < result.final_perplexity_ratio() < 2.0
