"""Standalone driver for the cross-process shard-equivalence drill.

Runs one small load point through the snapshot-sharded executor
(:func:`repro.exec.shard.run_load_point_sharded`) and writes the full
artifact — headline report plus merged capture state — as canonical
JSON, so two invocations can be compared byte for byte:

* ``serial OUT --shards W`` — window jobs run inline, in order
  (``executor=None``): the serial oracle at window count W.
* ``sharded OUT --shards W --ckpt DIR [--jobs N] [--kill-after K]
  [--resume]`` — window jobs fan out through a journaling
  :class:`repro.exec.JobRunner`. ``--kill-after`` arms the SIGKILL
  drill (the process dies after the Kth journal append, never
  mid-write); ``--resume`` replays the journal a previous killed run
  left behind instead of re-executing its jobs.

The runner counters go to stderr as ``executed=N ... journal_hits=M``
so the test can assert a resumed run really replayed the journaled
windows rather than silently redoing the work.
"""

import argparse
import sys
from pathlib import Path

# One deliberately small fig7-shaped load point: big enough to cross
# window boundaries with work in every window, small enough that the
# whole kill/resume drill stays in test-suite time.
POINT = {
    "latency_class": "500us",
    "encoding": "hbfp8",
    "load": 0.5,
    "batches": 1,
    "seed": 3,
}


def _run(shards, executor):
    from repro.exec.shard import run_load_point_sharded

    return run_load_point_sharded(
        POINT["latency_class"],
        POINT["encoding"],
        POINT["load"],
        POINT["batches"],
        shards,
        seed=POINT["seed"],
        executor=executor,
    )


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode", choices=("serial", "sharded"))
    parser.add_argument("out", type=Path)
    parser.add_argument("--shards", type=int, required=True)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--ckpt", type=Path, default=None)
    parser.add_argument("--kill-after", type=int, default=None)
    parser.add_argument("--resume", action="store_true")
    args = parser.parse_args(argv)

    from repro.exec.canonical import canonical_json

    if args.mode == "serial":
        artifact = _run(args.shards, executor=None)
        args.out.write_text(canonical_json(artifact))
        return 0

    from repro.exec.scheduler import JobRunner
    from repro.faults.killswitch import KillSwitch

    runner = JobRunner(
        jobs=args.jobs,
        checkpoint_dir=args.ckpt,
        resume=args.resume,
        on_unit_done=KillSwitch(args.kill_after).note_unit_done,
    )
    artifact = _run(args.shards, executor=runner)
    args.out.write_text(canonical_json(artifact))
    print(
        " ".join(
            f"{name}={value}" for name, value in sorted(
                runner.counters.items()
            )
        ),
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
