"""Bench harness: pinned suite, schema validation, artifact naming."""

import json

import pytest

from repro.exec import bench


@pytest.fixture(scope="module")
def quick_doc():
    """One cheap kernel, once — enough to exercise the whole pipeline."""
    return bench.run_suite(repeats=1, kernels=["arith.hbfp_quantize"])


class TestSuite:
    def test_at_least_four_pinned_kernels(self):
        assert len(bench.pinned_kernels()) >= 4

    def test_document_shape(self, quick_doc):
        assert quick_doc["schema"] == bench.BENCH_SCHEMA
        record = quick_doc["kernels"]["arith.hbfp_quantize"]
        assert record["repeats"] == 1
        assert len(record["per_repeat_s"]) == 1
        wall = record["wall_s"]
        assert 0 < wall["min"] <= wall["mean"] <= wall["max"]

    def test_work_proof_is_deterministic(self):
        _, kernel = bench.pinned_kernels()["arith.hbfp_quantize"]
        assert kernel() == kernel()

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError, match="unknown bench kernels"):
            bench.run_suite(repeats=1, kernels=["no.such.kernel"])

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError):
            bench.run_suite(repeats=0)


class TestKernelPairs:
    """The dual-backend pair entries and their speedups section."""

    PAIR_BASES = (
        "kernels.bfp_matmul", "kernels.quantize",
        "kernels.systolic", "kernels.im2col",
    )

    def test_every_pair_pinned_under_both_backends(self):
        suite = bench.pinned_kernels()
        for base in self.PAIR_BASES:
            assert f"{base}.reference" in suite
            assert f"{base}.fast" in suite

    def test_pair_work_proofs_match_across_backends(self):
        """The timed payloads compute the same checksum — the bench is
        timing the same work, not two different problems."""
        suite = bench.pinned_kernels()
        _, reference = suite["kernels.im2col.reference"]
        _, fast = suite["kernels.im2col.fast"]
        assert reference() == fast()

    def test_speedups_section_built_from_pairs(self):
        doc = bench.run_suite(
            repeats=1,
            kernels=["kernels.im2col.reference", "kernels.im2col.fast"],
        )
        record = doc["speedups"]["kernels.im2col"]
        assert record["speedup"] == pytest.approx(
            record["reference_s"] / record["fast_s"]
        )
        assert bench.validate_bench(doc) == []

    def test_lone_backend_yields_no_speedups(self, quick_doc):
        assert "speedups" not in quick_doc

    def test_render_includes_speedup_table(self):
        doc = bench.run_suite(
            repeats=1,
            kernels=["kernels.im2col.reference", "kernels.im2col.fast"],
        )
        text = bench.render_suite(doc)
        assert "speedup" in text
        assert "kernels.im2col" in text


class TestSimDrainPair:
    """The event-loop microbench entries (old scheme vs new scheme)."""

    def test_both_arms_pinned(self):
        suite = bench.pinned_kernels()
        assert "sim.drain.reference" in suite
        assert "sim.drain.batched" in suite

    def test_work_proofs_identical(self):
        """Both arms fire the same events at the same times — the
        arrival stream is stream-equal by the next_gaps contract."""
        suite = bench.pinned_kernels()
        _, reference = suite["sim.drain.reference"]
        _, batched = suite["sim.drain.batched"]
        assert reference() == batched()

    def test_speedups_pair_reference_with_batched(self):
        doc = bench.run_suite(
            repeats=1,
            kernels=["sim.drain.reference", "sim.drain.batched"],
        )
        record = doc["speedups"]["sim.drain"]
        assert record["speedup"] == pytest.approx(
            record["reference_s"] / record["fast_s"]
        )
        assert bench.validate_bench(doc) == []


class TestSimShardPair:
    """The sharded-execution bench: serial replay vs critical-path
    makespan at W=8 — the headline the tentpole claims."""

    def test_both_arms_pinned(self):
        suite = bench.pinned_kernels()
        assert "sim.shard.reference" in suite
        assert "sim.shard.fast" in suite

    def test_work_proofs_identical(self):
        """Both arms fold byte-identical window results through the
        same ordered merge; the artifact checksums must agree."""
        suite = bench.pinned_kernels()
        _, reference = suite["sim.shard.reference"]
        _, fast = suite["sim.shard.fast"]
        assert reference() == fast()

    def test_critical_path_beats_serial_replay(self):
        """The headline: at 8 shards the critical-path makespan is at
        least 3x faster than replaying every window serially. Both
        arms run in this process with warm caches, so the ratio is
        pure replay-work — far above 3x in practice (the gate is
        deliberately below the ~W-proportional expectation to absorb
        CI noise, while still failing if sharding stops paying)."""
        doc = bench.run_suite(
            repeats=2,
            kernels=["sim.shard.reference", "sim.shard.fast"],
        )
        record = doc["speedups"]["sim.shard"]
        assert record["speedup"] >= 3.0
        assert bench.validate_bench(doc) == []


def _synthetic_doc(times, created=1000, work=None):
    """A minimal valid BENCH document with the given kernel min times."""
    kernels = {}
    for name, min_s in times.items():
        kernels[name] = {
            "description": name,
            "repeats": 1,
            "wall_s": {"min": min_s, "mean": min_s, "max": min_s},
            "per_repeat_s": [min_s],
            "work": 1.0 if work is None else work.get(name, 1.0),
        }
    return {
        "schema": bench.BENCH_SCHEMA,
        "code_version": "f" * 64,
        "python": "3.11.0",
        "platform": "test",
        "cpu_count": 1,
        "created_unix": created,
        "kernels": kernels,
    }


class TestDiff:
    def test_no_regression_within_tolerance(self):
        base = _synthetic_doc({"a": 0.010, "b": 0.020})
        cur = _synthetic_doc({"a": 0.015, "b": 0.019})
        regressions, notes = bench.diff_benches(base, cur, tolerance=2.0)
        assert regressions == []
        assert notes == []

    def test_regression_past_tolerance_flagged(self):
        base = _synthetic_doc({"a": 0.010})
        cur = _synthetic_doc({"a": 0.025})
        regressions, _ = bench.diff_benches(base, cur, tolerance=2.0)
        assert len(regressions) == 1
        assert "a:" in regressions[0]
        assert "2.50x" in regressions[0]

    def test_exactly_at_tolerance_passes(self):
        base = _synthetic_doc({"a": 0.010})
        cur = _synthetic_doc({"a": 0.020})
        regressions, _ = bench.diff_benches(base, cur, tolerance=2.0)
        assert regressions == []

    def test_one_sided_kernels_are_notes_not_failures(self):
        base = _synthetic_doc({"a": 0.010, "gone": 0.010})
        cur = _synthetic_doc({"a": 0.010, "new": 0.010})
        regressions, notes = bench.diff_benches(base, cur)
        assert regressions == []
        assert any("gone" in note for note in notes)
        assert any("new" in note for note in notes)

    def test_work_proof_drift_is_a_note(self):
        base = _synthetic_doc({"a": 0.010}, work={"a": 5.0})
        cur = _synthetic_doc({"a": 0.010}, work={"a": 6.0})
        regressions, notes = bench.diff_benches(base, cur)
        assert regressions == []
        assert any("work proof changed" in note for note in notes)

    def test_bad_tolerance_rejected(self):
        base = _synthetic_doc({"a": 0.010})
        with pytest.raises(ValueError, match="tolerance"):
            bench.diff_benches(base, base, tolerance=1.0)

    def test_latest_bench_path_picks_newest_stamp(self, tmp_path):
        old = _synthetic_doc({"a": 0.010}, created=100)
        new = _synthetic_doc({"a": 0.010}, created=200)
        (tmp_path / "BENCH_aaa.json").write_text(json.dumps(new))
        (tmp_path / "BENCH_bbb.json").write_text(json.dumps(old))
        assert bench.latest_bench_path(tmp_path) == str(
            tmp_path / "BENCH_aaa.json"
        )

    def test_latest_bench_path_skips_invalid_files(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        (tmp_path / "BENCH_schema.json").write_text(json.dumps({"schema": "x"}))
        good = _synthetic_doc({"a": 0.010}, created=50)
        (tmp_path / "BENCH_good.json").write_text(json.dumps(good))
        assert bench.latest_bench_path(tmp_path) == str(
            tmp_path / "BENCH_good.json"
        )

    def test_latest_bench_path_empty_dir(self, tmp_path):
        assert bench.latest_bench_path(tmp_path) is None

    def test_committed_baseline_is_discoverable(self):
        """The repo must always carry a valid baseline for the CI gate."""
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[2]
        path = bench.latest_bench_path(repo / "benchmarks")
        assert path is not None
        with open(path) as handle:
            data = json.load(handle)
        assert bench.validate_bench(data) == []


class TestValidation:
    def test_valid_document_passes(self, quick_doc):
        assert bench.validate_bench(quick_doc) == []

    def test_wrong_schema_fails(self, quick_doc):
        doc = dict(quick_doc, schema="nope")
        assert any("schema" in p for p in bench.validate_bench(doc))

    def test_nonfinite_timing_fails(self, quick_doc):
        doc = json.loads(json.dumps(quick_doc))
        doc["kernels"]["arith.hbfp_quantize"]["wall_s"]["min"] = 0.0
        assert bench.validate_bench(doc)

    def test_unordered_stats_fail(self, quick_doc):
        doc = json.loads(json.dumps(quick_doc))
        wall = doc["kernels"]["arith.hbfp_quantize"]["wall_s"]
        wall["min"] = wall["max"] * 2
        assert any("out of order" in p for p in bench.validate_bench(doc))

    def test_empty_kernels_fail(self, quick_doc):
        doc = dict(quick_doc, kernels={})
        assert bench.validate_bench(doc)

    def test_speedups_must_be_an_object(self, quick_doc):
        doc = dict(quick_doc, speedups=[1.0])
        assert any("speedups" in p for p in bench.validate_bench(doc))

    def test_nonpositive_speedup_timing_fails(self, quick_doc):
        doc = dict(quick_doc, speedups={
            "kernels.x": {"reference_s": 0.0, "fast_s": 1.0, "speedup": 0.0},
        })
        assert any("speedups.kernels.x" in p for p in bench.validate_bench(doc))

    def test_wellformed_speedups_pass(self, quick_doc):
        doc = dict(quick_doc, speedups={
            "kernels.x": {
                "reference_s": 2.0, "fast_s": 0.5, "speedup": 4.0,
            },
        })
        assert bench.validate_bench(doc) == []


class TestArtifact:
    def test_default_path_uses_fingerprint(self, tmp_path):
        from repro.exec.canonical import code_fingerprint

        path = bench.default_bench_path(tmp_path)
        assert path.endswith(f"BENCH_{code_fingerprint()[:12]}.json")

    def test_write_and_reload(self, quick_doc, tmp_path):
        path = bench.default_bench_path(tmp_path, rev="testrev")
        bench.write_bench(quick_doc, path)
        with open(path) as handle:
            assert bench.validate_bench(json.load(handle)) == []

    def test_refuses_invalid_document(self, tmp_path):
        with pytest.raises(ValueError, match="refusing to write"):
            bench.write_bench({"schema": "bad"}, str(tmp_path / "b.json"))

    def test_render_mentions_every_kernel(self, quick_doc):
        text = bench.render_suite(quick_doc)
        assert "arith.hbfp_quantize" in text
