"""ResultCache: content addressing, byte verification, eviction."""

import json

import pytest

from repro.exec.cache import ENTRY_SCHEMA, ResultCache, open_cache
from repro.exec.jobs import Job


def _job(config=None, seed=0, code_version="v1"):
    return Job(
        "exec.probe",
        {"mode": "echo", **(config or {})},
        seed=seed,
        code_version=code_version,
    )


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestHitMiss:
    def test_empty_cache_misses(self, cache):
        hit, value = cache.get(_job())
        assert not hit and value is None
        assert cache.stats.misses == 1

    def test_put_then_hit(self, cache):
        job = _job()
        cache.put(job, {"answer": 42})
        hit, value = cache.get(job)
        assert hit and value == {"answer": 42}
        assert cache.stats.hits == 1

    def test_config_delta_misses(self, cache):
        cache.put(_job({"payload": 1}), {"r": 1})
        hit, _ = cache.get(_job({"payload": 2}))
        assert not hit

    def test_seed_delta_misses(self, cache):
        cache.put(_job(seed=0), {"r": 1})
        hit, _ = cache.get(_job(seed=1))
        assert not hit

    def test_code_version_delta_misses(self, cache):
        cache.put(_job(code_version="v1"), {"r": 1})
        hit, _ = cache.get(_job(code_version="v2"))
        assert not hit

    def test_config_key_order_still_hits(self, cache):
        a = Job("exec.probe", {"mode": "echo", "x": 1}, code_version="v")
        b = Job("exec.probe", {"x": 1, "mode": "echo"}, code_version="v")
        cache.put(a, {"r": 1})
        hit, value = cache.get(b)
        assert hit and value == {"r": 1}

    def test_none_result_round_trips(self, cache):
        """A legitimately-None result is distinguishable from a miss."""
        job = _job()
        cache.put(job, None)
        hit, value = cache.get(job)
        assert hit and value is None


class TestVerification:
    def test_truncated_entry_evicted_and_recomputed(self, cache):
        job = _job()
        path = cache.put(job, {"r": 1})
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        hit, _ = cache.get(job)
        assert not hit
        assert cache.stats.evictions == 1
        assert not path.exists(), "corrupt entry must be removed"
        # Recompute path: a fresh put restores service.
        cache.put(job, {"r": 1})
        hit, value = cache.get(job)
        assert hit and value == {"r": 1}

    def test_tampered_payload_checksum_evicts(self, cache):
        job = _job()
        path = cache.put(job, {"r": 1})
        entry = json.loads(path.read_text())
        entry["payload_json"] = '{"r":999}'
        path.write_text(json.dumps(entry))
        hit, _ = cache.get(job)
        assert not hit and cache.stats.evictions == 1

    def test_aliased_key_material_evicts(self, cache):
        """An entry renamed onto another job's address is rejected."""
        a, b = _job({"payload": "a"}), _job({"payload": "b"})
        src = cache.put(a, {"r": "a"})
        dst = cache.path_for(b)
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_bytes(src.read_bytes())
        hit, _ = cache.get(b)
        assert not hit and cache.stats.evictions == 1

    def test_wrong_schema_evicts(self, cache):
        job = _job()
        path = cache.put(job, {"r": 1})
        entry = json.loads(path.read_text())
        entry["schema"] = "something/else"
        path.write_text(json.dumps(entry))
        hit, _ = cache.get(job)
        assert not hit

    def test_embedded_invalid_run_report_evicts(self, cache):
        from repro.obs.report import SCHEMA_ID

        job = _job()
        report_shaped = {"schema": SCHEMA_ID, "name": "x"}  # missing fields
        # Write through the normal path (put doesn't validate payload
        # semantics), then verify the read side rejects it.
        cache.put(job, {"nested": [{"artifact": report_shaped}]})
        hit, _ = cache.get(job)
        assert not hit and cache.stats.evictions == 1

    def test_valid_embedded_report_passes(self, cache):
        from repro.obs.report import RunReport

        artifact = RunReport(name="t", kind="experiment", config={}).to_dict()
        job = _job()
        cache.put(job, {"artifact": artifact})
        hit, value = cache.get(job)
        assert hit and value["artifact"]["name"] == "t"


class TestMaintenance:
    def test_len_and_clear(self, cache):
        for i in range(3):
            cache.put(_job({"payload": i}), {"r": i})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_open_cache_none_passthrough(self, tmp_path):
        assert open_cache(None) is None
        assert isinstance(open_cache(tmp_path), ResultCache)

    def test_two_level_fanout(self, cache):
        job = _job()
        path = cache.put(job, {"r": 1})
        digest = job.digest()
        assert path.parent.name == digest[:2]
        assert path.name == f"{digest}.json"

    def test_entry_is_schema_tagged(self, cache):
        path = cache.put(_job(), {"r": 1})
        assert json.loads(path.read_text())["schema"] == ENTRY_SCHEMA
