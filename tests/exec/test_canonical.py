"""Canonical serialization, digests and the code fingerprint."""

import json
import math

import numpy as np
import pytest

from repro.exec.canonical import (
    canonical_json,
    code_fingerprint,
    config_digest,
    decode,
    encode,
)


class TestCanonicalJson:
    def test_key_order_never_matters(self):
        a = {"n": 8, "m": 4, "w": 2}
        b = {"w": 2, "n": 8, "m": 4}
        assert canonical_json(a) == canonical_json(b)
        assert config_digest(a) == config_digest(b)

    def test_compact_and_sorted(self):
        text = canonical_json({"b": 1, "a": [1, 2]})
        assert text == '{"a":[1,2],"b":1}'

    def test_numpy_scalars_collapse(self):
        value = {"n": np.int64(8), "f": np.float32(0.5)}
        text = canonical_json(value)
        parsed = json.loads(text)
        assert parsed["n"] == 8
        assert isinstance(parsed["n"], int)
        assert parsed["f"] == 0.5

    def test_nonfinite_policy_round_trips(self):
        value = {"inf": math.inf, "ninf": -math.inf, "nan": math.nan}
        restored = decode(encode(value))
        assert restored["inf"] == math.inf
        assert restored["ninf"] == -math.inf
        assert restored["nan"] != restored["nan"]  # NaN

    def test_tuples_normalize_to_lists(self):
        assert decode(encode({"grid": (1, 2, 3)})) == {"grid": [1, 2, 3]}

    def test_digest_is_sha256_hex(self):
        digest = config_digest({"x": 1})
        assert len(digest) == 64
        assert int(digest, 16) >= 0

    def test_digest_sensitivity(self):
        base = config_digest({"x": 1})
        assert config_digest({"x": 2}) != base
        assert config_digest({"y": 1}) != base


class TestCodeFingerprint:
    def test_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_shape(self):
        assert len(code_fingerprint()) == 64

    def test_memo_reset_recomputes_identically(self, monkeypatch):
        """The fingerprint is a pure function of the tree's *.py bytes:
        dropping the process memo and rehashing gives the same value."""
        import repro.exec.canonical as canonical

        memoized = canonical.code_fingerprint()
        monkeypatch.setattr(canonical, "_FINGERPRINT", None)
        assert canonical.code_fingerprint() == memoized


class TestJobIdentity:
    def test_digest_varies_with_inputs(self):
        from repro.exec.jobs import Job

        base = Job("exec.probe", {"mode": "echo"}, seed=0, code_version="v1")
        assert base == Job(
            "exec.probe", {"mode": "echo"}, seed=0, code_version="v1"
        )
        assert base != Job(
            "exec.probe", {"mode": "sleep"}, seed=0, code_version="v1"
        )
        assert base != Job(
            "exec.probe", {"mode": "echo"}, seed=1, code_version="v1"
        )
        assert base != Job(
            "exec.probe", {"mode": "echo"}, seed=0, code_version="v2"
        )

    def test_default_code_version_is_fingerprint(self):
        from repro.exec.jobs import Job

        job = Job("exec.probe", {})
        assert job.resolved_code_version() == code_fingerprint()

    def test_jobs_hash_into_sets(self):
        from repro.exec.jobs import Job

        a = Job("exec.probe", {"n": 1}, code_version="v")
        b = Job("exec.probe", {"n": 1}, code_version="v")
        assert len({a, b}) == 1


class TestRegistry:
    def test_known_ids_resolve(self):
        from repro.exec.jobs import available_jobs, resolve_job

        for fn_id in available_jobs():
            assert callable(resolve_job(fn_id))

    def test_unknown_id_raises(self):
        from repro.exec.jobs import resolve_job

        with pytest.raises(KeyError, match="unknown job id"):
            resolve_job("no.such.job")

    def test_rebinding_raises(self):
        from repro.exec.jobs import register_job

        register_job("test.reg", "repro.exec.tasks:exec_probe")
        # Idempotent for the same target...
        register_job("test.reg", "repro.exec.tasks:exec_probe")
        # ...but a different target would alias cache keys.
        with pytest.raises(ValueError, match="already registered"):
            register_job("test.reg", "repro.exec.tasks:dse_points")

    def test_bad_target_syntax_raises(self):
        from repro.exec.jobs import register_job

        with pytest.raises(ValueError, match="module:function"):
            register_job("test.bad", "not-a-target")


class TestRunJob:
    def test_normalizes_result(self):
        from repro.exec.jobs import run_job

        result = run_job("exec.probe", {"payload": (1, 2)}, 0)
        assert result["payload"] == [1, 2]

    def test_non_jsonable_result_is_typeerror(self):
        from repro.exec.jobs import register_job, run_job

        register_job("test.opaque", "tests.exec.test_canonical:_opaque")
        with pytest.raises(TypeError, match="non-JSON-able"):
            run_job("test.opaque", {}, 0)


def _opaque(config, seed):
    return object()
