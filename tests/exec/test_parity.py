"""End-to-end determinism: --jobs N is byte-identical to --jobs 1.

These run the real ``python -m repro`` entry points (in-process) and
compare artifacts with byte equality — the guarantee the ISSUE pins.
Sizes are shrunk (small n-max, one load, few requests) to keep the
suite interactive; the guarantee itself is size-independent because it
rests on ordered aggregation + canonical normalization, not on luck.
"""

from repro.__main__ import main
from repro.exec import JobRunner


def _sweep_artifact(tmp_path, tag, *flags):
    out = tmp_path / tag
    code = main(
        ["sweep", "--n-max", "24", "--encodings", "hbfp8",
         "--report-dir", str(out), *flags]
    )
    assert code == 0
    return (out / "sweep.json").read_bytes()


class TestSweepParity:
    def test_jobs2_byte_identical_to_jobs1(self, tmp_path, capsys):
        serial = _sweep_artifact(tmp_path, "j1", "--jobs", "1")
        parallel = _sweep_artifact(
            tmp_path, "j2", "--jobs", "2", "--chunk", "5"
        )
        assert serial == parallel

    def test_cache_replay_byte_identical(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        first = _sweep_artifact(
            tmp_path, "c1", "--jobs", "1", "--cache-dir", str(cache)
        )
        replay = _sweep_artifact(
            tmp_path, "c2", "--jobs", "2", "--cache-dir", str(cache)
        )
        assert first == replay


class TestFig7Parity:
    def test_executor_modes_agree(self):
        from repro.eval import fig7
        from repro.eval.runner import capture_run

        loads = (0.5,)

        def run_with(executor):
            with capture_run("fig7") as capture:
                result = fig7.run(
                    loads=loads, encodings=("hbfp8",), executor=executor
                )
            return result, capture.build_report().to_json()

        r1, report1 = run_with(JobRunner(jobs=1))
        r2, report2 = run_with(JobRunner(jobs=2))
        assert r1 == r2
        assert report1 == report2, "experiment artifact must be byte-equal"

    def test_executor_curves_match_inline(self):
        from repro.eval import fig7

        loads = (0.5,)
        inline = fig7.run(loads=loads, encodings=("hbfp8",))
        fanned = fig7.run(
            loads=loads, encodings=("hbfp8",), executor=JobRunner(jobs=1)
        )
        assert inline == fanned


class TestChaosParity:
    def test_executor_matches_inline(self):
        from repro.faults import chaos

        inline = chaos.run(requests=48)
        fanned = chaos.run(requests=48, executor=JobRunner(jobs=2))
        assert inline["rows"] == fanned["rows"]
        assert {
            name: artifact.to_json()
            for name, artifact in inline["artifacts"].items()
        } == {
            name: artifact.to_json()
            for name, artifact in fanned["artifacts"].items()
        }
        assert all(row.reproducible for row in fanned["rows"])


class TestExperimentFlags:
    def test_fig6_accepts_jobs_flag(self, tmp_path, capsys):
        assert main(["fig6", "--jobs", "2"]) == 0

    def test_bench_subcommand_writes_valid_artifact(self, tmp_path, capsys):
        import json

        from repro.exec import bench

        code = main(
            ["bench", "--repeats", "1",
             "--kernels", "arith.hbfp_quantize", "arith.gemm",
             "--out-dir", str(tmp_path), "--rev", "test"]
        )
        assert code == 0
        with open(tmp_path / "BENCH_test.json") as handle:
            assert bench.validate_bench(json.load(handle)) == []

    def test_bench_validate_only(self, tmp_path, capsys):
        main(
            ["bench", "--repeats", "1", "--kernels", "arith.hbfp_quantize",
             "--out-dir", str(tmp_path), "--rev", "v"]
        )
        path = str(tmp_path / "BENCH_v.json")
        assert main(["bench", "--validate-only", path]) == 0
