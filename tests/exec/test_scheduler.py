"""Scheduler: ordering, parity, crash/timeout isolation, budgets."""

import pytest

from repro.exec.jobs import Job
from repro.exec.scheduler import (
    JobExecutionError,
    JobRunner,
    ProcessPoolScheduler,
    resolve_jobs,
    run_jobs,
)


def _echo_jobs(count, code_version="v1"):
    return [
        Job(
            "exec.probe",
            {"mode": "echo", "payload": i},
            seed=i,
            code_version=code_version,
        )
        for i in range(count)
    ]


class TestResolveJobs:
    def test_values(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs("5") == 5
        assert resolve_jobs("auto") >= 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs("-2")


class TestSerial:
    def test_results_in_submission_order(self):
        results = JobRunner(jobs=1).map(_echo_jobs(8))
        assert [r["payload"] for r in results] == list(range(8))

    def test_deterministic_failure_raises(self):
        runner = JobRunner(jobs=1)
        with pytest.raises(JobExecutionError, match="raised"):
            runner.map([Job("exec.probe", {"mode": "raise"})])

    def test_counters(self):
        runner = JobRunner(jobs=1)
        runner.map(_echo_jobs(3))
        assert runner.counters["executed"] == 3

    def test_run_jobs_one_shot(self):
        results = run_jobs(_echo_jobs(2), n_jobs=1)
        assert [r["payload"] for r in results] == [0, 1]


class TestPool:
    def test_parallel_equals_serial(self):
        jobs = _echo_jobs(12)
        assert JobRunner(jobs=2).map(jobs) == JobRunner(jobs=1).map(jobs)

    def test_order_independent_of_completion_time(self):
        """Later-submitted fast jobs must not overtake a slow first job."""
        jobs = [
            Job("exec.probe", {"mode": "sleep", "seconds": 0.4, "payload": 0}),
            Job("exec.probe", {"mode": "echo", "payload": 1}),
            Job("exec.probe", {"mode": "echo", "payload": 2}),
        ]
        results = JobRunner(jobs=2).map(jobs)
        assert [r["payload"] for r in results] == [0, 1, 2]

    def test_crash_exhausts_bounded_budget(self):
        runner = JobRunner(jobs=2, max_retries=1)
        with pytest.raises(JobExecutionError, match="retry budget"):
            runner.map([Job("exec.probe", {"mode": "crash"})])
        counters = runner.counters
        # initial attempt + 1 retry, each counted as a crash
        assert counters["crashes"] == 2
        assert counters["retries"] == 1

    def test_crash_does_not_lose_neighbors(self):
        """Healthy in-flight jobs re-run after a pool respawn."""
        jobs = _echo_jobs(6)
        jobs.insert(3, Job("exec.probe", {"mode": "crash"}))
        runner = JobRunner(jobs=2, max_retries=1)
        with pytest.raises(JobExecutionError):
            runner.map(jobs)
        # The healthy jobs alone complete despite sharing a window with
        # a crasher earlier (fresh runner, no crasher now).
        healthy = _echo_jobs(6)
        assert [r["payload"] for r in JobRunner(jobs=2).map(healthy)] == list(
            range(6)
        )

    def test_timeout_is_bounded(self):
        runner = JobRunner(jobs=2, timeout_s=0.3, max_retries=0)
        with pytest.raises(JobExecutionError, match="timed out"):
            runner.map(
                [Job("exec.probe", {"mode": "sleep", "seconds": 30})]
            )
        assert runner.counters["timeouts"] == 1

    def test_deterministic_raise_never_retried(self):
        runner = JobRunner(jobs=2, max_retries=5)
        with pytest.raises(JobExecutionError, match="raised"):
            runner.map([Job("exec.probe", {"mode": "raise"})])
        assert runner.counters["retries"] == 0


class TestCacheIntegration:
    def test_second_run_replays_from_disk(self, tmp_path):
        jobs = _echo_jobs(4)
        first = JobRunner(jobs=1, cache_dir=tmp_path)
        r1 = first.map(jobs)
        assert first.counters == {
            "executed": 4, "cache_hits": 0, "journal_hits": 0,
            "crashes": 0, "timeouts": 0, "retries": 0,
        }
        second = JobRunner(jobs=1, cache_dir=tmp_path)
        r2 = second.map(jobs)
        assert second.counters["cache_hits"] == 4
        assert second.counters["executed"] == 0
        assert r1 == r2

    def test_parallel_writes_cache_serial_reads(self, tmp_path):
        jobs = _echo_jobs(6)
        JobRunner(jobs=2, cache_dir=tmp_path).map(jobs)
        replay = JobRunner(jobs=1, cache_dir=tmp_path)
        assert replay.map(jobs) == JobRunner(jobs=1).map(jobs)
        assert replay.counters["cache_hits"] == 6

    def test_corrupt_entry_recomputed_transparently(self, tmp_path):
        jobs = _echo_jobs(2)
        runner = JobRunner(jobs=1, cache_dir=tmp_path)
        runner.map(jobs)
        # Corrupt one entry on disk.
        victim = runner.cache.path_for(jobs[0])
        victim.write_text("{not json")
        replay = JobRunner(jobs=1, cache_dir=tmp_path)
        results = replay.map(jobs)
        assert [r["payload"] for r in results] == [0, 1]
        assert replay.counters["cache_hits"] == 1
        assert replay.counters["executed"] == 1
        assert replay.cache.stats.evictions == 1


class TestValidation:
    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            ProcessPoolScheduler(workers=0)

    def test_retry_budget_validated(self):
        with pytest.raises(ValueError):
            ProcessPoolScheduler(max_retries=-1)
