"""Snapshot-sharded execution equivalence: for every experiment tier
the sharded artifact is byte-identical to its serial oracle — across
shard counts, worker counts, and a mid-window SIGKILL/--resume cycle.

The load-point and serve tiers compare against the serial *windowed*
pipeline at the same W (W is part of the canonical spec); the training
tier is stronger — epoch windows are exact, so every shard count must
reproduce the unsharded experiment bit for bit.
"""

import copy
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exec.canonical import canonical_json
from repro.exec.jobs import run_job
from repro.exec.scheduler import JobRunner
from repro.exec.shard import (
    ShardError,
    boundary_digest,
    run_convergence_sharded,
    run_load_point_sharded,
    run_scenario_sharded,
    shard_load_forward,
    shard_load_window,
)
from repro.serve.classes import TenantSpec

SRC = Path(__file__).resolve().parents[2] / "src"
DRIVER = Path(__file__).parent / "_shard_driver.py"

#: The fuzz axis: one window (degenerate), even split, prime count,
#: and more windows than some tiers have work for.
SHARD_COUNTS = (1, 2, 7, 16)

SEED = 3
POINT = {
    "latency_class": "500us",
    "encoding": "hbfp8",
    "load": 0.5,
    "batches": 1,
}

EPOCHS = 2


def _load_point(shards, executor=None):
    return run_load_point_sharded(
        POINT["latency_class"],
        POINT["encoding"],
        POINT["load"],
        POINT["batches"],
        shards,
        seed=SEED,
        executor=executor,
    )


def _scenario_spec(fleet_size=2, requests=200, plan=None):
    tenants = [
        TenantSpec("interactive", "latency-critical", 0.25),
        TenantSpec("bulk", "best-effort", 1.0),
        TenantSpec("trainer", "batch-training", 0.35),
    ]
    return {
        "fleet_size": fleet_size,
        "requests": requests,
        "tenants": [spec.to_dict() for spec in tenants],
        "plan": plan,
        "batch_service_cycles": 1000.0,
        "batch_slots": 8,
        "frequency_hz": 1e9,
    }


class TestLoadPointEquivalence:
    """Figure 7/9 tier: forward/replay/merge over request windows."""

    @pytest.fixture(scope="class")
    def serial(self):
        """The serial oracle per shard count: the same windowed
        pipeline with the window jobs run inline, in order."""
        return {w: _load_point(w) for w in SHARD_COUNTS}

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_workers_match_serial_oracle(self, serial, shards):
        fanned = _load_point(shards, executor=JobRunner(jobs=2))
        assert canonical_json(fanned) == canonical_json(serial[shards])

    def test_w1_headline_matches_unsharded_job(self, serial):
        """One window degenerates to the plain schedule: the headline
        report must equal the monolithic ``eval.load_point`` job's."""
        plain = run_job("eval.load_point", dict(POINT), SEED)
        sharded = dict(serial[1])
        plain.pop("capture")
        sharded.pop("capture")
        assert sharded == plain

    def test_artifacts_depend_on_window_count(self, serial):
        """W is part of the canonical spec: the capture state of a
        W=2 run is not interchangeable with W=7's (the quiesce
        boundaries are observable), which is exactly why CI compares
        artifacts at matched W."""
        assert canonical_json(serial[2]) != canonical_json(serial[7])

    def test_corrupt_boundary_payload_is_refused(self):
        forward = shard_load_forward(
            {**{k: v for k, v in POINT.items()}, "windows": 2}, SEED
        )
        tampered = copy.deepcopy(forward["checkpoints"][0])
        tampered["__tampered__"] = 1
        config = {
            "latency_class": POINT["latency_class"],
            "encoding": POINT["encoding"],
            "load": POINT["load"],
            "windows": 2,
            "requests": forward["requests"],
            "index": 1,
            "boundary_sha": forward["digests"][0],
            "resume": tampered,
        }
        with pytest.raises(ShardError, match="corrupt boundary"):
            shard_load_window(config, SEED)
        # The untampered payload really was the digest's preimage.
        assert (
            boundary_digest(forward["checkpoints"][0])
            == forward["digests"][0]
        )

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="at least one shard"):
            _load_point(0)
        with pytest.raises(ValueError, match="at least one shard"):
            run_convergence_sharded("classification", ["hbfp8"], 1, 0)
        with pytest.raises(ValueError, match="at least one shard"):
            run_scenario_sharded(_scenario_spec(), SEED, 0)


class TestConvergenceEquivalence:
    """Figure 2 tier: epoch windows are exact, so every shard count
    reproduces the unsharded experiment bit for bit — including W
    beyond the epoch count (empty tail windows)."""

    @staticmethod
    def _curve_value(curve):
        return (
            curve.epochs,
            curve.validation_error,
            curve.validation_loss,
        )

    @pytest.fixture(scope="class")
    def unsharded(self):
        from repro.train.convergence import convergence_experiment

        curves = convergence_experiment(
            encodings=["hbfp8"], epochs=EPOCHS
        )
        return self._curve_value(curves["hbfp8"])

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_every_shard_count_is_bit_identical(self, unsharded, shards):
        curves = run_convergence_sharded(
            "classification", ["hbfp8"], EPOCHS, shards, seed=SEED
        )
        assert self._curve_value(curves["hbfp8"]) == unsharded

    def test_workers_match_inline(self, unsharded):
        curves = run_convergence_sharded(
            "classification",
            ["hbfp8"],
            EPOCHS,
            2,
            seed=SEED,
            executor=JobRunner(jobs=2),
        )
        assert self._curve_value(curves["hbfp8"]) == unsharded

    def test_unknown_experiment_is_named(self):
        with pytest.raises(ValueError, match="unknown training experiment"):
            run_convergence_sharded("diffusion", ["hbfp8"], 1, 1)


class TestScenarioEquivalence:
    """Fleet-serving tier: arrival windows with the sketch-merge
    cross-check standing in for the monolithic double-run flag."""

    @pytest.mark.parametrize("shards", (1, 2, 7))
    def test_workers_match_serial_oracle(self, shards):
        spec = _scenario_spec()
        inline = run_scenario_sharded(spec, SEED, shards)
        fanned = run_scenario_sharded(
            spec, SEED, shards, executor=JobRunner(jobs=2)
        )
        assert inline["reproducible"] is True
        assert canonical_json(fanned) == canonical_json(inline)

    def test_chip_kill_crosses_window_boundaries(self):
        """A fault plan's counters accumulate across windows: the
        sharded accounting identity still closes per class."""
        from repro.faults.plan import FaultPlan, WorkerFaultSpec

        plan = FaultPlan(seed=5, workers=WorkerFaultSpec(crashed=(1,)))
        spec = _scenario_spec(
            fleet_size=4, requests=400, plan=plan.to_dict()
        )
        point = run_scenario_sharded(spec, SEED, 3)
        assert point["reproducible"] is True
        assert point["totals"]["chips_killed"] == 1
        for name, entry in point["classes"].items():
            assert entry["submitted"] == (
                entry["completed"] + entry["shed"] + entry["timed_out"]
                + entry["failover_dropped"]
            ), name


class TestFaultCounterFold:
    """The window-merge fold on FaultCounters: summing snapshots in
    boundary order reproduces serial accumulation exactly."""

    def test_merge_state_equals_serial_accumulation(self):
        from repro.faults.counters import FaultCounters

        windows = [
            FaultCounters(hbm_errors=2, degraded_cycles=1.5, hbm_retries=1),
            FaultCounters(mmu_stalls=3, mmu_stall_cycles=7.25),
            FaultCounters(hbm_errors=1, workers_crashed=1),
        ]
        serial = FaultCounters()
        for window in windows:
            serial.merge(window)

        folded = FaultCounters()
        for window in windows:
            folded.merge_state(window.to_state())
        assert folded.as_dict() == serial.as_dict()
        # The fold preserves types, not just values (float cycles stay
        # float, integer tallies stay int) — canonical JSON depends on it.
        assert isinstance(folded.degraded_cycles, float)
        assert isinstance(folded.hbm_errors, int)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def _driver(args, **kwargs):
    return subprocess.run(
        [sys.executable, str(DRIVER)] + [str(a) for a in args],
        capture_output=True, text=True, env=_env(), **kwargs,
    )


class TestCrossProcessCrashResume:
    def test_sigkill_mid_window_then_resume_is_byte_identical(
        self, tmp_path
    ):
        """The CI shard drill, in miniature: a W=4 sharded run is
        SIGKILLed after its third journal append (forward pass plus two
        replayed windows), then resumed in a fresh process. The resumed
        run must replay exactly the journaled jobs and land on the
        serial oracle's bytes."""
        reference = tmp_path / "reference.json"
        out = tmp_path / "sharded.json"
        ckpt = tmp_path / "ckpt"

        oracle = _driver(["serial", reference, "--shards", 4])
        assert oracle.returncode == 0, oracle.stderr

        killed = _driver(
            ["sharded", out, "--shards", 4, "--ckpt", ckpt,
             "--kill-after", 3]
        )
        assert killed.returncode == -signal.SIGKILL
        journal = ckpt / "journal.jsonl"
        assert len(journal.read_text().splitlines()) == 3
        assert not out.exists()

        resumed = _driver(
            ["sharded", out, "--shards", 4, "--ckpt", ckpt, "--resume"]
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "journal_hits=3" in resumed.stderr
        assert out.read_bytes() == reference.read_bytes()

    def test_uninterrupted_workers_land_on_oracle_bytes(self, tmp_path):
        """No kill, two workers, fresh journal: still byte-equal."""
        reference = tmp_path / "reference.json"
        out = tmp_path / "sharded.json"

        oracle = _driver(["serial", reference, "--shards", 2])
        assert oracle.returncode == 0, oracle.stderr
        fanned = _driver(
            ["sharded", out, "--shards", 2, "--jobs", 2,
             "--ckpt", tmp_path / "ckpt"]
        )
        assert fanned.returncode == 0, fanned.stderr
        assert out.read_bytes() == reference.read_bytes()
