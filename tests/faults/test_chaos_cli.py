"""The ``python -m repro chaos`` scenario matrix and its rendering."""

import pytest

from repro.faults import chaos


@pytest.fixture(scope="module")
def result():
    # Small drive keeps the matrix fast; the scenarios themselves are
    # the shipped ones.
    return chaos.run(load=0.5, requests=96, seed=3)


class TestChaosMatrix:
    def test_all_scenarios_present(self, result):
        names = [row.name for row in result["rows"]]
        assert names == [
            "baseline", "hbm_ecc", "tile_stalls", "lossy_frontend",
            "overload_shed", "fleet_baseline", "fleet_chaos",
        ]

    def test_baseline_is_clean(self, result):
        baseline = result["rows"][0]
        assert baseline.faults_injected == 0
        assert baseline.recoveries == 0

    def test_fault_scenarios_inject(self, result):
        by_name = {row.name: row for row in result["rows"]}
        for name in ("hbm_ecc", "tile_stalls", "lossy_frontend", "fleet_chaos"):
            assert by_name[name].faults_injected > 0, name

    def test_every_scenario_reproducible(self, result):
        assert all(row.reproducible for row in result["rows"])

    def test_fleet_chaos_aggregates_partially(self, result):
        row = {r.name: r for r in result["rows"]}["fleet_chaos"]
        assert row.workers_aggregated < chaos.FLEET_SIZE
        assert row.workers_dropped >= 1
        assert row.notable.get("workers_crashed") == 1

    def test_render_is_a_table(self, result):
        text = chaos.render(result)
        for row in result["rows"]:
            assert row.name in text
        assert "determinism self-check" in text
        assert "FAIL" not in text


class TestCLI:
    def test_main_chaos_exit_code(self, capsys):
        from repro.__main__ import main

        code = main([
            "chaos", "--load", "0.5", "--requests", "64", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Chaos matrix" in out
        assert "fleet_chaos" in out
