"""Chaos runs are byte-for-byte reproducible from their FaultPlan seed
(the point of seeding every injection site), and decorrelated where
decorrelation is the contract (worker substreams)."""

import pytest

from repro.cluster.fleet import EquinoxFleet
from repro.core.equinox import EquinoxAccelerator
from repro.faults import (
    AdmissionControl,
    FaultPlan,
    HBMFaultSpec,
    MMUFaultSpec,
    RequestFaultSpec,
    WorkerFaultSpec,
)
from repro.hw.config import AcceleratorConfig


@pytest.fixture
def config():
    return AcceleratorConfig(name="bench", n=8, m=4, w=4, frequency_hz=1e9)


def everything_plan(seed):
    return FaultPlan(
        seed=seed,
        hbm=HBMFaultSpec(error_rate=0.05, max_retries=2),
        mmu=MMUFaultSpec(stall_rate=0.1, stall_cycles=500.0),
        requests=RequestFaultSpec(
            drop_rate=0.05, delay_rate=0.1, delay_cycles=200.0
        ),
    )


def accel_report(config, model, seed):
    accelerator = EquinoxAccelerator(
        config, model, training_model=model, training_batch=8,
        chunk_us=0.05,
        fault_plan=everything_plan(seed),
        admission=AdmissionControl(
            max_queue_requests=64, deadline_cycles=50_000.0,
            max_retries=1, backoff_cycles=1_000.0,
        ),
    )
    return accelerator.run(load=0.5, requests=64, seed=seed)


def report_key(report):
    return (
        report.p99_latency_us,
        report.mean_latency_us,
        report.max_latency_us,
        report.requests_submitted,
        report.requests_completed,
        report.inference_top_s,
        report.training_top_s,
        report.rejected_requests,
        report.request_timeouts,
        tuple(sorted(report.faults.as_dict().items())),
    )


class TestAcceleratorDeterminism:
    def test_same_seed_identical_reports(self, config, tiny_model):
        first = accel_report(config, tiny_model, seed=13)
        second = accel_report(config, tiny_model, seed=13)
        assert report_key(first) == report_key(second)
        assert first.faults.faults_injected > 0  # chaos actually ran

    def test_different_seed_differs(self, config, tiny_model):
        first = accel_report(config, tiny_model, seed=13)
        second = accel_report(config, tiny_model, seed=14)
        assert report_key(first) != report_key(second)


def fleet_report(seed):
    plan = FaultPlan(
        seed=seed,
        hbm=HBMFaultSpec(error_rate=0.002, max_retries=3),
        workers=WorkerFaultSpec(crashed=(2,)),
    )
    fleet = EquinoxFleet(3, fault_plan=plan, min_workers=2)
    return fleet.train([0.4, 0.5, 0.4], batches=1, seed=seed)


def fleet_key(report):
    return (
        report.samples_per_s,
        report.fleet_training_top_s,
        report.round,
        tuple(report.workers),
        tuple(sorted(report.faults.as_dict().items())),
    )


class TestFleetDeterminism:
    def test_same_seed_identical_fleet_reports(self):
        assert fleet_key(fleet_report(21)) == fleet_key(fleet_report(21))

    def test_workers_are_decorrelated(self):
        # Same load on every worker: identical fault/arrival streams
        # would produce identical measurements, masking fleet variance.
        fleet = EquinoxFleet(
            3,
            fault_plan=FaultPlan(
                seed=5, hbm=HBMFaultSpec(error_rate=0.01, max_retries=3)
            ),
        )
        report = fleet.train([0.5, 0.5, 0.5], batches=1, seed=5)
        p99s = [w.p99_latency_us for w in report.workers]
        iters = [w.iteration_s for w in report.workers]
        assert len(set(p99s)) > 1
        assert len(set(iters)) > 1
