"""Fleet fault tolerance: straggler-tolerant rounds, partial
aggregation, crash recovery via round checkpoints, and the
parameter-server/report validation fixes."""

import math

import pytest

from repro.cluster.fleet import EquinoxFleet, FleetReport, RoundCheckpoint
from repro.cluster.parameter_server import ParameterServer
from repro.faults import FaultPlan, HBMFaultSpec, WorkerFaultSpec


class TestRoundValidation:
    """Satellite fix: the parameter server refuses nonsense inputs
    instead of silently composing a corrupt round."""

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="zero workers"):
            ParameterServer().round([], model_weights=1000)

    def test_infinite_iteration_rejected(self):
        # A crashed worker surfaces as iteration_s = inf upstream; it
        # must be excluded before the round, never aggregated.
        with pytest.raises(ValueError, match="finite"):
            ParameterServer().round([0.1, math.inf], model_weights=1000)

    def test_nonpositive_iteration_rejected(self):
        with pytest.raises(ValueError):
            ParameterServer().round([0.1, 0.0], model_weights=1000)
        with pytest.raises(ValueError):
            ParameterServer().round([0.1, -1.0], model_weights=1000)

    def test_zero_weight_model_rejected(self):
        with pytest.raises(ValueError):
            ParameterServer().round([0.1], model_weights=0)

    def test_bad_timeout_and_min_workers_rejected(self):
        server = ParameterServer()
        with pytest.raises(ValueError):
            server.round([0.1], model_weights=10, timeout_s=0.0)
        with pytest.raises(ValueError):
            server.round([0.1], model_weights=10, min_workers=0)


class TestPartialAggregation:
    def test_no_timeout_waits_for_stragglers(self):
        sync = ParameterServer().round([0.1, 0.1, 0.4], model_weights=1000)
        assert sync.compute_s == 0.4
        assert sync.workers_aggregated == 3
        assert sync.workers_dropped == 0
        assert not sync.is_partial

    def test_timeout_drops_stragglers(self):
        sync = ParameterServer().round(
            [0.1, 0.1, 0.4], model_weights=1000, timeout_s=0.2
        )
        # The barrier closes at the timeout; two survivors aggregate.
        assert sync.compute_s == 0.2
        assert sync.workers_aggregated == 2
        assert sync.workers_dropped == 1
        assert sync.is_partial

    def test_partial_round_moves_less_data(self):
        server = ParameterServer()
        full = server.round([0.1, 0.1, 0.4], model_weights=100_000)
        partial = server.round(
            [0.1, 0.1, 0.4], model_weights=100_000, timeout_s=0.2
        )
        assert partial.gather_s < full.gather_s
        assert partial.broadcast_s < full.broadcast_s

    def test_min_workers_floor_enforced(self):
        with pytest.raises(ValueError, match="min_workers"):
            ParameterServer().round(
                [0.1, 0.4, 0.5], model_weights=1000,
                timeout_s=0.2, min_workers=2,
            )


class TestScalingEfficiencyValidation:
    """Satellite fix: an empty/zero-harvest report raises instead of
    quietly returning 0.0."""

    def _report(self, workers):
        sync = ParameterServer().round([0.1], model_weights=1000)
        return FleetReport(
            workers=workers, round=sync, samples_per_s=1.0,
            fleet_training_top_s=1.0, dedicated_top_s=1.0,
        )

    def test_no_workers_raises(self):
        with pytest.raises(ValueError, match="no surviving workers"):
            self._report([]).scaling_efficiency

    def test_zero_harvest_raises(self, tiny_model):
        fleet = EquinoxFleet(1, model=tiny_model, training_batch=8)
        report = fleet.train([0.3], batches=1, seed=0)
        zeroed = [
            type(w)(
                worker_id=w.worker_id, load=w.load, training_top_s=0.0,
                inference_top_s=w.inference_top_s,
                p99_latency_us=w.p99_latency_us, iteration_s=w.iteration_s,
            )
            for w in report.workers
        ]
        with pytest.raises(ValueError, match="no worker harvested"):
            self._report(zeroed).scaling_efficiency


@pytest.fixture(scope="module")
def chaos_fleet_report():
    """The acceptance scenario: 4 workers, HBM retries + one straggler
    + one crash, completed via partial aggregation."""
    baseline = EquinoxFleet(4, min_workers=2)
    healthy = baseline.train([0.4] * 4, batches=1, seed=11)
    plan = FaultPlan(
        seed=11,
        hbm=HBMFaultSpec(error_rate=0.005, max_retries=3),
        workers=WorkerFaultSpec(crashed=(3,), stragglers=((1, 4.0),)),
    )
    fleet = EquinoxFleet(
        4, fault_plan=plan,
        round_timeout_s=2.0 * healthy.round.compute_s,
        min_workers=2,
    )
    report = fleet.train([0.4] * 4, batches=1, seed=11)
    return healthy, report, fleet


class TestFleetChaos:
    def test_round_completes_partially(self, chaos_fleet_report):
        _, report, _ = chaos_fleet_report
        assert report.round.workers_aggregated == 2
        assert report.round.workers_dropped == 1  # the straggler
        assert report.round.is_partial

    def test_counters_in_report(self, chaos_fleet_report):
        _, report, _ = chaos_fleet_report
        assert report.faults.workers_crashed == 1
        assert report.faults.stragglers_dropped == 1
        assert report.faults.rounds_partial == 1
        assert report.faults.hbm_errors > 0
        assert report.faults.hbm_retries > 0

    def test_p99_degradation_is_bounded(self, chaos_fleet_report):
        healthy, report, _ = chaos_fleet_report
        worst_healthy = max(w.p99_latency_us for w in healthy.workers)
        worst_chaos = max(w.p99_latency_us for w in report.workers)
        assert math.isfinite(worst_chaos)
        assert worst_chaos <= 3.0 * worst_healthy

    def test_throughput_scales_with_survivors(self, chaos_fleet_report):
        healthy, report, _ = chaos_fleet_report
        assert 0 < report.samples_per_s < healthy.samples_per_s

    def test_straggler_harvests_proportionally_less(self, chaos_fleet_report):
        _, report, _ = chaos_fleet_report
        by_id = {w.worker_id: w for w in report.workers}
        assert by_id[1].iteration_s > 3.0 * by_id[0].iteration_s

    def test_all_crashed_round_refused(self):
        plan = FaultPlan(
            seed=0, workers=WorkerFaultSpec(crashed=(0, 1))
        )
        fleet = EquinoxFleet(2, fault_plan=plan, min_workers=1)
        with pytest.raises(ValueError, match="survived"):
            fleet.train([0.4, 0.4], batches=1, seed=0)


class TestCheckpointRestore:
    def test_checkpoint_records_survivors(self, chaos_fleet_report):
        _, _, fleet = chaos_fleet_report
        checkpoint = fleet.last_checkpoint
        assert checkpoint is not None
        assert {w.worker_id for w in checkpoint.reports} == {0, 1, 2}

    def test_resume_skips_measured_workers(self, chaos_fleet_report):
        _, report, fleet = chaos_fleet_report
        checkpoint = fleet.last_checkpoint
        # The crashed worker is replaced; re-run the round resuming from
        # the checkpoint under a crash-free plan.
        healed = EquinoxFleet(
            4,
            fault_plan=FaultPlan(
                seed=11, hbm=HBMFaultSpec(error_rate=0.005, max_retries=3)
            ),
            min_workers=2,
        )
        resumed = healed.train(
            [0.4] * 4, batches=1, seed=11, resume_from=checkpoint
        )
        assert resumed.faults.round_restores == 1
        assert resumed.round.workers_aggregated == 4
        by_id = {w.worker_id: w for w in resumed.workers}
        # Survivors' measurements are reused bit-for-bit.
        for original in report.workers:
            assert by_id[original.worker_id] == original

    def test_mismatched_checkpoint_refused(self, tiny_model):
        fleet = EquinoxFleet(1, model=tiny_model, training_batch=8)
        checkpoint = RoundCheckpoint(seed=99, loads=(0.5,))
        with pytest.raises(ValueError, match="different seed/loads"):
            fleet.train([0.5], batches=1, seed=0, resume_from=checkpoint)
