"""Injection sites: HBM ECC retries, MMU stalls, lossy arrivals."""

import pytest

from repro.faults import (
    FaultCounters,
    FaultInjector,
    FaultPlan,
    HBMFaultSpec,
    MMUFaultSpec,
    RequestFaultSpec,
)
from repro.hw.dram import ECC_RETRY_KIND, HBMInterface
from repro.hw.isa import MMUJob
from repro.hw.mmu import MatrixMultiplyUnit
from repro.workload.loadgen import FaultyArrivals, TraceArrivals


def make_injector(plan):
    counters = FaultCounters()
    return FaultInjector(plan, counters), counters


class TestHBMRetry:
    def test_certain_error_exhausts_bounded_budget(self, sim, tiny_config):
        hbm = HBMInterface(sim, tiny_config)
        injector, counters = make_injector(
            FaultPlan(seed=1, hbm=HBMFaultSpec(error_rate=1.0, max_retries=2))
        )
        hbm.set_fault_injector(injector)
        done = []
        hbm.transfer(4096, kind="train_weights", on_done=lambda: done.append(1))
        sim.run()
        # Every completion errors: 2 bounded retries, then the transfer
        # is delivered through the exhausted path — never wedged.
        assert done == [1]
        assert counters.hbm_retries == 2
        assert counters.hbm_retry_exhausted == 1
        assert counters.hbm_errors == 3

    def test_retry_bandwidth_is_accounted_separately(self, sim, tiny_config):
        hbm = HBMInterface(sim, tiny_config)
        injector, _ = make_injector(
            FaultPlan(seed=1, hbm=HBMFaultSpec(error_rate=1.0, max_retries=2))
        )
        hbm.set_fault_injector(injector)
        hbm.transfer(4096, kind="train_weights", on_done=lambda: None)
        sim.run()
        aligned = hbm.bytes_by_kind["train_weights"]
        assert hbm.bytes_by_kind[ECC_RETRY_KIND] == pytest.approx(2 * aligned)
        # Retries consume real channel bandwidth.
        assert hbm.bytes_transferred == pytest.approx(3 * aligned)

    def test_retries_delay_completion(self, sim, tiny_config):
        clean = HBMInterface(sim, tiny_config)
        t_clean = []
        clean.transfer(4096, on_done=lambda: t_clean.append(sim.now))
        sim.run()

        faulty = HBMInterface(sim, tiny_config)
        injector, _ = make_injector(
            FaultPlan(seed=1, hbm=HBMFaultSpec(error_rate=1.0, max_retries=1))
        )
        faulty.set_fault_injector(injector)
        start = sim.now
        t_faulty = []
        faulty.transfer(4096, on_done=lambda: t_faulty.append(sim.now - start))
        sim.run()
        assert t_faulty[0] > t_clean[0]

    def test_zero_error_rate_is_transparent(self, sim, tiny_config):
        hbm = HBMInterface(sim, tiny_config)
        injector, counters = make_injector(FaultPlan.none())
        hbm.set_fault_injector(injector)
        done = []
        hbm.transfer(4096, on_done=lambda: done.append(sim.now))
        sim.run()
        assert done
        assert counters.faults_injected == 0
        assert ECC_RETRY_KIND not in hbm.bytes_by_kind


class TestMMUStall:
    def _job(self):
        return MMUJob(cycles=100.0, rows=4, macs=1000.0, utilization=1.0)

    def test_stall_extends_occupancy_into_other(self, sim, tiny_config):
        mmu = MatrixMultiplyUnit(sim, tiny_config)
        injector, counters = make_injector(
            FaultPlan(
                seed=2, mmu=MMUFaultSpec(stall_rate=1.0, stall_cycles=40.0)
            )
        )
        mmu.set_fault_injector(injector)
        done = []
        mmu.issue(self._job(), real_rows=4, context="inference",
                  on_done=lambda: done.append(sim.now))
        sim.run()
        assert counters.mmu_stalls == 1
        assert counters.mmu_stall_cycles == 40.0
        assert mmu.busy_cycles == pytest.approx(140.0)
        # The stall is dead time: Figure 8's "other", not working cycles.
        shares = mmu.accounting.breakdown(140.0)
        assert shares["other"] == pytest.approx(40.0 / 140.0)
        assert shares["working"] == pytest.approx(100.0 / 140.0)

    def test_no_stall_without_injector(self, sim, tiny_config):
        mmu = MatrixMultiplyUnit(sim, tiny_config)
        mmu.issue(self._job(), real_rows=4, context="inference")
        sim.run()
        assert mmu.busy_cycles == pytest.approx(100.0)


class TestFaultyArrivals:
    def test_drops_merge_gaps_and_are_counted(self):
        plan = FaultPlan(seed=5, requests=RequestFaultSpec(drop_rate=0.5))
        counters = FaultCounters()
        arrivals = FaultyArrivals(TraceArrivals([10.0]), plan, counters)
        gaps = [arrivals.next_gap() for _ in range(200)]
        # Every gap is a whole number of merged base gaps.
        assert all(gap % 10.0 == 0 for gap in gaps)
        assert any(gap > 10.0 for gap in gaps)
        assert counters.requests_dropped > 0
        # Surviving arrivals inherit the dropped requests' gaps exactly.
        assert sum(gaps) == pytest.approx(
            10.0 * (len(gaps) + counters.requests_dropped)
        )

    def test_delays_stretch_gaps(self):
        plan = FaultPlan(
            seed=5,
            requests=RequestFaultSpec(delay_rate=1.0, delay_cycles=7.0),
        )
        counters = FaultCounters()
        arrivals = FaultyArrivals(TraceArrivals([10.0]), plan, counters)
        gaps = [arrivals.next_gap() for _ in range(20)]
        assert gaps == [17.0] * 20
        assert counters.requests_delayed == 20

    def test_same_plan_same_lossy_trace(self):
        plan = FaultPlan(
            seed=9,
            requests=RequestFaultSpec(
                drop_rate=0.2, delay_rate=0.3, delay_cycles=4.0
            ),
        )
        first = FaultyArrivals(TraceArrivals([10.0]), plan, FaultCounters())
        second = FaultyArrivals(TraceArrivals([10.0]), plan, FaultCounters())
        assert [first.next_gap() for _ in range(100)] == [
            second.next_gap() for _ in range(100)
        ]
