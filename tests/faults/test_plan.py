"""FaultPlan: spec validation, seeded substreams, descriptions."""

import numpy as np
import pytest

from repro.faults import (
    FaultPlan,
    HBMFaultSpec,
    MMUFaultSpec,
    RequestFaultSpec,
    WorkerFaultSpec,
)


class TestSpecValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            HBMFaultSpec(error_rate=1.5)
        with pytest.raises(ValueError):
            MMUFaultSpec(stall_rate=-0.1)
        with pytest.raises(ValueError):
            RequestFaultSpec(delay_rate=2.0)

    def test_drop_rate_one_rejected(self):
        # drop_rate == 1 would merge gaps forever: no request arrives.
        with pytest.raises(ValueError):
            RequestFaultSpec(drop_rate=1.0)

    def test_negative_budgets_rejected(self):
        with pytest.raises(ValueError):
            HBMFaultSpec(max_retries=-1)
        with pytest.raises(ValueError):
            MMUFaultSpec(stall_cycles=-5.0)
        with pytest.raises(ValueError):
            RequestFaultSpec(delay_cycles=-1.0)

    def test_straggler_slowdown_must_exceed_one(self):
        with pytest.raises(ValueError):
            WorkerFaultSpec(stragglers=((0, 1.0),))
        with pytest.raises(ValueError):
            WorkerFaultSpec(stragglers=((0, 0.5),))

    def test_crash_and_straggle_overlap_rejected(self):
        with pytest.raises(ValueError):
            WorkerFaultSpec(crashed=(1,), stragglers=((1, 2.0),))

    def test_worker_spec_lookups(self):
        spec = WorkerFaultSpec(crashed=(2,), stragglers=((1, 3.0),))
        assert spec.is_crashed(2)
        assert not spec.is_crashed(1)
        assert spec.slowdown_for(1) == 3.0
        assert spec.slowdown_for(0) == 1.0


class TestEnabled:
    def test_none_plan_injects_nothing(self):
        assert not FaultPlan.none().enabled
        assert not FaultPlan.none(seed=42).enabled

    def test_any_spec_enables_the_plan(self):
        assert FaultPlan(hbm=HBMFaultSpec(error_rate=0.1)).enabled
        assert FaultPlan(mmu=MMUFaultSpec(stall_rate=0.1, stall_cycles=5)).enabled
        assert FaultPlan(requests=RequestFaultSpec(drop_rate=0.1)).enabled
        assert FaultPlan(workers=WorkerFaultSpec(crashed=(0,))).enabled

    def test_zero_rate_specs_stay_disabled(self):
        assert not HBMFaultSpec().enabled
        assert not MMUFaultSpec(stall_rate=0.5).enabled  # zero stall cycles
        assert not RequestFaultSpec(delay_rate=0.5).enabled  # zero delay


class TestSubstreams:
    def test_same_component_same_stream(self):
        plan = FaultPlan(seed=11)
        first = plan.rng("hbm").random(8)
        second = plan.rng("hbm").random(8)
        assert np.array_equal(first, second)

    def test_components_are_decorrelated(self):
        plan = FaultPlan(seed=11)
        assert not np.array_equal(
            plan.rng("hbm").random(8), plan.rng("mmu").random(8)
        )

    def test_instances_are_decorrelated(self):
        plan = FaultPlan(seed=11)
        assert not np.array_equal(
            plan.rng("hbm", instance=0).random(8),
            plan.rng("hbm", instance=1).random(8),
        )

    def test_seed_changes_every_stream(self):
        assert not np.array_equal(
            FaultPlan(seed=1).rng("hbm").random(8),
            FaultPlan(seed=2).rng("hbm").random(8),
        )


class TestDescribe:
    def test_quiet_plan(self):
        assert "no faults" in FaultPlan.none().describe()

    def test_active_plan_lists_components(self):
        plan = FaultPlan(
            seed=3,
            hbm=HBMFaultSpec(error_rate=0.05),
            workers=WorkerFaultSpec(crashed=(1,)),
        )
        text = plan.describe()
        assert "hbm" in text
        assert "workers" in text
        assert "seed=3" in text
