"""FaultPlan / AdmissionControl dict round-trips (job-config transport)."""

import pytest

from repro.faults.admission import AdmissionControl
from repro.faults.plan import (
    FaultPlan,
    HBMFaultSpec,
    MMUFaultSpec,
    RequestFaultSpec,
    WorkerFaultSpec,
)


def _full_plan():
    return FaultPlan(
        seed=11,
        hbm=HBMFaultSpec(error_rate=0.05, max_retries=2),
        mmu=MMUFaultSpec(stall_rate=0.1, stall_cycles=250.0),
        requests=RequestFaultSpec(
            drop_rate=0.02, delay_rate=0.1, delay_cycles=100.0
        ),
        workers=WorkerFaultSpec(crashed=(3,), stragglers=((1, 4.0),)),
    )


class TestFaultPlanRoundTrip:
    def test_full_plan(self):
        plan = _full_plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_empty_plan(self):
        plan = FaultPlan(seed=5)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_survives_canonical_json(self):
        from repro.exec.canonical import decode, encode

        plan = _full_plan()
        assert FaultPlan.from_dict(decode(encode(plan.to_dict()))) == plan

    def test_tuples_restored(self):
        restored = FaultPlan.from_dict(_full_plan().to_dict())
        assert restored.workers.crashed == (3,)
        assert restored.workers.stragglers == ((1, 4.0),)

    def test_rng_streams_identical(self):
        plan = _full_plan()
        restored = FaultPlan.from_dict(plan.to_dict())
        assert (
            plan.rng("hbm", 0).random(8).tolist()
            == restored.rng("hbm", 0).random(8).tolist()
        )

    def test_validation_reruns_on_load(self):
        data = _full_plan().to_dict()
        data["hbm"]["error_rate"] = 2.0
        with pytest.raises(ValueError):
            FaultPlan.from_dict(data)


class TestAdmissionControlRoundTrip:
    def test_full_policy(self):
        policy = AdmissionControl(
            max_queue_requests=32,
            deadline_cycles=1e6,
            max_retries=2,
            backoff_cycles=5e4,
        )
        assert AdmissionControl.from_dict(policy.to_dict()) == policy

    def test_default_policy(self):
        policy = AdmissionControl()
        assert AdmissionControl.from_dict(policy.to_dict()) == policy

    def test_validation_reruns_on_load(self):
        data = AdmissionControl(
            max_queue_requests=32, deadline_cycles=1e6
        ).to_dict()
        data["max_queue_requests"] = 0
        with pytest.raises(ValueError):
            AdmissionControl.from_dict(data)
