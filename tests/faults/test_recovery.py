"""Recovery mechanisms: admission control, deadlines, the SLO guard,
and the failed-run latency semantics (inf, not a passing 0)."""

import math

import pytest

from repro.core.batching import StaticBatching
from repro.core.dispatcher import RequestDispatcher
from repro.core.equinox import EquinoxAccelerator
from repro.faults import (
    AdmissionControl,
    FaultCounters,
    FaultPlan,
    MMUFaultSpec,
    SLOGuard,
)
from repro.hw.config import AcceleratorConfig


@pytest.fixture
def config():
    return AcceleratorConfig(name="bench", n=8, m=4, w=4, frequency_hz=1e9)


class TestAdmissionValidation:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            AdmissionControl(max_queue_requests=0)
        with pytest.raises(ValueError):
            AdmissionControl(deadline_cycles=0.0)
        with pytest.raises(ValueError):
            AdmissionControl(max_retries=-1)

    def test_retries_require_deadline(self):
        with pytest.raises(ValueError):
            AdmissionControl(max_retries=2)

    def test_backoff_doubles_per_attempt(self):
        admission = AdmissionControl(
            deadline_cycles=100, max_retries=3, backoff_cycles=10.0
        )
        assert admission.retry_delay(1) == 10.0
        assert admission.retry_delay(2) == 20.0
        assert admission.retry_delay(3) == 40.0


class TestLoadShedding:
    def test_full_buffer_sheds(self, sim):
        counters = FaultCounters()
        dispatcher = RequestDispatcher(
            sim, StaticBatching(slots=8), on_batch=lambda b: None,
            admission=AdmissionControl(max_queue_requests=2),
            counters=counters,
        )
        first = dispatcher.submit()
        second = dispatcher.submit()
        shed = dispatcher.submit()
        assert not first.rejected and not second.rejected
        assert shed.rejected
        assert dispatcher.queue_size == 2
        assert dispatcher.rejected_requests == 1
        assert counters.rejected_requests == 1

    def test_no_admission_is_unbounded(self, sim):
        dispatcher = RequestDispatcher(
            sim, StaticBatching(slots=128), on_batch=lambda b: None
        )
        for _ in range(100):
            dispatcher.submit()
        assert dispatcher.queue_size == 100
        assert dispatcher.rejected_requests == 0


class TestDeadlines:
    def test_expired_request_abandoned(self, sim):
        counters = FaultCounters()
        dispatcher = RequestDispatcher(
            sim, StaticBatching(slots=8), on_batch=lambda b: None,
            admission=AdmissionControl(deadline_cycles=50.0),
            counters=counters,
        )
        request = dispatcher.submit()
        sim.run()
        assert request.timed_out
        assert dispatcher.queue_size == 0
        assert counters.request_timeouts == 1
        assert sim.now == 50.0

    def test_retry_with_backoff_then_timeout(self, sim):
        counters = FaultCounters()
        dispatcher = RequestDispatcher(
            sim, StaticBatching(slots=8), on_batch=lambda b: None,
            admission=AdmissionControl(
                deadline_cycles=50.0, max_retries=1, backoff_cycles=10.0
            ),
            counters=counters,
        )
        request = dispatcher.submit()
        sim.run()
        # t=50 deadline -> re-admitted at t=60 -> final deadline t=110.
        assert counters.request_retries == 1
        assert counters.request_timeouts == 1
        assert request.retries == 1
        assert request.timed_out
        assert sim.now == 110.0

    def test_batched_request_escapes_deadline(self, sim):
        formed = []
        counters = FaultCounters()
        dispatcher = RequestDispatcher(
            sim, StaticBatching(slots=2), on_batch=formed.append,
            admission=AdmissionControl(deadline_cycles=50.0),
            counters=counters,
        )
        dispatcher.submit()
        dispatcher.submit()  # completes the batch immediately
        sim.run()
        assert len(formed) == 1
        assert counters.request_timeouts == 0

    def test_retried_request_keeps_original_clock(self, sim):
        formed = []
        dispatcher = RequestDispatcher(
            sim, StaticBatching(slots=2), on_batch=formed.append,
            admission=AdmissionControl(
                deadline_cycles=50.0, max_retries=2, backoff_cycles=5.0
            ),
        )
        request = dispatcher.submit()
        # A partner arrives during the first retry wait; the pair batch.
        sim.at(52.0, dispatcher.submit)
        sim.run()
        assert len(formed) == 1
        assert request in formed[0].requests
        assert request.arrival_cycle == 0.0  # latency from first arrival
        assert request.retries == 1


class TestSLOGuard:
    def test_degrades_and_recovers_with_hysteresis(self, sim):
        backlog = [0]
        counters = FaultCounters()
        transitions = []
        guard = SLOGuard(
            sim, lambda: backlog[0],
            degrade_threshold=4, check_interval_cycles=10.0,
            counters=counters,
            on_degrade=lambda: transitions.append("degrade"),
            on_recover=lambda: transitions.append("recover"),
        )
        backlog[0] = 5
        sim.run(until=10.0)
        assert guard.degraded
        # Between recover (2) and degrade (4) thresholds: still degraded.
        backlog[0] = 3
        sim.run(until=20.0)
        assert guard.degraded
        backlog[0] = 1
        sim.run(until=30.0)
        assert not guard.degraded
        assert transitions == ["degrade", "recover"]
        assert counters.degraded_intervals == 1
        assert counters.degraded_cycles == pytest.approx(20.0)
        guard.stop()

    def test_flush_accounts_open_interval(self, sim):
        backlog = [10]
        counters = FaultCounters()
        guard = SLOGuard(
            sim, lambda: backlog[0],
            degrade_threshold=4, check_interval_cycles=10.0,
            counters=counters,
        )
        sim.run(until=35.0)
        assert guard.degraded
        guard.flush()
        assert counters.degraded_cycles == pytest.approx(25.0)

    def test_recover_threshold_must_sit_below(self, sim):
        with pytest.raises(ValueError):
            SLOGuard(
                sim, lambda: 0, degrade_threshold=4,
                check_interval_cycles=10.0, counters=FaultCounters(),
                recover_threshold=4,
            )


class TestGracefulDegradation:
    def test_stall_storm_preempts_training(self, config, tiny_model):
        accelerator = EquinoxAccelerator(
            config, tiny_model, training_model=tiny_model, training_batch=8,
            chunk_us=0.05,
            fault_plan=FaultPlan(
                seed=3,
                mmu=MMUFaultSpec(stall_rate=0.6, stall_cycles=30_000.0),
            ),
        )
        report = accelerator.run(load=0.6, requests=64)
        assert report.faults.mmu_stalls > 0
        # The backlog from stalled batches trips the SLO guard at least
        # once, and the time spent degraded is accounted.
        assert report.faults.degraded_intervals >= 1
        assert report.faults.degraded_cycles > 0

    def test_degraded_flags_restored_after_recovery(self, config, tiny_model):
        accelerator = EquinoxAccelerator(
            config, tiny_model, training_model=tiny_model, training_batch=8,
            chunk_us=0.05, fault_plan=FaultPlan.none(),
        )
        accelerator._enter_degraded()
        assert accelerator.scheduler.degraded
        assert accelerator.batching.degraded
        accelerator._exit_degraded()
        assert not accelerator.scheduler.degraded
        assert not accelerator.batching.degraded


class TestFailedRunLatency:
    """Satellite fix: a run that completes zero requests reports an
    infinite p99 — it can never pass an SLO check — while a run that
    was offered no traffic stays unmeasured (nan)."""

    def test_no_completions_is_inf(self):
        assert EquinoxAccelerator._no_sample_latency_us(5) == math.inf

    def test_no_traffic_is_nan(self):
        assert math.isnan(EquinoxAccelerator._no_sample_latency_us(0))

    def test_fully_failed_run_cannot_meet_target(self, config, tiny_model):
        # Static batching never force-issues; a 1-cycle admission
        # deadline expires every request before a full batch ever forms,
        # so traffic is offered but nothing completes.
        accelerator = EquinoxAccelerator(
            config, tiny_model, batching="static",
            admission=AdmissionControl(deadline_cycles=1.0),
        )
        report = accelerator.run_profile([0.3], dwell_s=2e-5)[0]
        assert report.requests_submitted > 0
        assert report.requests_completed == 0
        assert report.p99_latency_us == math.inf
        assert not report.meets_target(1e9)
        assert report.faults.request_timeouts == report.request_timeouts > 0
