"""On-chip buffers: space-sharing and shared-port contention."""

import pytest

from repro.hw.buffers import BufferCapacityError, OnChipBuffer


@pytest.fixture
def buffer(sim):
    return OnChipBuffer(sim, "weight", capacity_bytes=1000, port_bytes_per_cycle=10)


class TestSpaceSharing:
    def test_allocate_and_free(self, buffer):
        buffer.allocate("inference", 600)
        assert buffer.allocated_bytes == 600
        assert buffer.free_bytes == 400
        buffer.release("inference")
        assert buffer.free_bytes == 1000

    def test_oversubscription_rejected(self, buffer):
        buffer.allocate("inference", 900)
        with pytest.raises(BufferCapacityError):
            buffer.allocate("training", 200)

    def test_duplicate_context_rejected(self, buffer):
        buffer.allocate("inference", 100)
        with pytest.raises(ValueError):
            buffer.allocate("inference", 100)

    def test_exclusive_slices(self, buffer):
        buffer.allocate("inference", 600)
        buffer.allocate("training", 20)  # the <2% staging slice
        assert buffer.allocation_of("inference") == 600
        assert buffer.allocation_of("training") == 20

    def test_release_unknown_is_noop(self, buffer):
        buffer.release("nobody")

    def test_rejects_negative_allocation(self, buffer):
        with pytest.raises(ValueError):
            buffer.allocate("x", -1)

    def test_rejects_bad_construction(self, sim):
        with pytest.raises(ValueError):
            OnChipBuffer(sim, "b", capacity_bytes=0, port_bytes_per_cycle=1)


class TestSharedPort:
    def test_write_occupies_port(self, sim, buffer):
        done = []
        buffer.port_write(100, on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [10.0]

    def test_writes_serialize(self, sim, buffer):
        done = []
        buffer.port_write(100, on_done=lambda: done.append(sim.now))
        buffer.port_write(50, on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [10.0, 15.0]

    def test_priority_on_shared_port(self, sim, buffer):
        done = []
        buffer.port_write(100)
        buffer.port_write(10, priority=1, on_done=lambda: done.append("train"))
        buffer.port_write(10, priority=0, on_done=lambda: done.append("host"))
        sim.run()
        assert done == ["host", "train"]

    def test_port_utilization(self, sim, buffer):
        buffer.port_write(100)
        sim.run(until=20)
        assert buffer.port_utilization() == pytest.approx(0.5)
