"""Accelerator configuration and derived geometry."""

import pytest

from repro.hw.config import MB, AcceleratorConfig, DRAMSpec, SRAMBudget


class TestValidation:
    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(name="x", n=0, m=1, w=1, frequency_hz=1e9)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(name="x", n=1, m=1, w=1, frequency_hz=0)

    def test_rejects_unknown_encoding(self):
        with pytest.raises(KeyError):
            AcceleratorConfig(
                name="x", n=1, m=1, w=1, frequency_hz=1e9, encoding="fp64"
            )


class TestDerivedGeometry:
    def test_tile_and_column_group(self, small_config):
        assert small_config.tile_k == 8 * 4
        assert small_config.column_group == 4 * 8

    def test_total_alus(self, small_config):
        assert small_config.total_alus == 4 * 8 * 8 * 4

    def test_peak_throughput_eq3(self, small_config):
        # T = 2·m·n²·w·f (paper Eq. 3).
        expected = 2 * 4 * 64 * 4 * 1e9
        assert small_config.peak_throughput_ops == pytest.approx(expected)
        assert small_config.peak_throughput_top_s == pytest.approx(expected / 1e12)

    def test_pipeline_drain(self, small_config):
        assert small_config.pipeline_drain_cycles == 8 * 4 + 2 * 8

    def test_staging_is_small_fraction(self, tiny_config):
        # Paper §2.2: training staging uses under 2% of on-chip SRAM.
        assert tiny_config.staging_bytes == pytest.approx(
            0.02 * tiny_config.sram.total_bytes
        )

    def test_dram_conversions(self, tiny_config):
        assert tiny_config.dram_bytes_per_cycle == pytest.approx(1e12 / 1e9)
        assert tiny_config.dram_latency_cycles == pytest.approx(100.0)


class TestUnitConversions:
    def test_cycles_seconds_roundtrip(self, tiny_config):
        assert tiny_config.seconds_to_cycles(
            tiny_config.cycles_to_seconds(12345)
        ) == pytest.approx(12345)

    def test_us_roundtrip(self, tiny_config):
        assert tiny_config.us_to_cycles(tiny_config.cycles_to_us(777)) == pytest.approx(
            777
        )


class TestBudgets:
    def test_sram_default_partitioning_matches_paper(self):
        budget = SRAMBudget()
        assert budget.activation_bytes == 20 * MB
        assert budget.weight_bytes == 50 * MB
        assert budget.simd_rf_bytes == 5 * MB
        assert budget.instruction_bytes == 32 * 1024

    def test_sram_total(self):
        budget = SRAMBudget()
        assert budget.total_bytes == pytest.approx(75 * MB + 32 * 1024, rel=1e-6)

    def test_dram_default_is_one_hbm_stack(self):
        spec = DRAMSpec()
        assert spec.bandwidth_bytes_per_s == 1e12
        assert spec.block_bytes == 64
