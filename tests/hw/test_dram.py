"""HBM interface model."""

import pytest

from repro.hw.dram import HBMInterface, PRIORITY_INFERENCE, PRIORITY_TRAINING


@pytest.fixture
def hbm(sim, tiny_config):
    return HBMInterface(sim, tiny_config)


class TestTransfers:
    def test_block_alignment_rounds_up(self, sim, hbm):
        hbm.transfer(100, kind="x")
        sim.run()
        assert hbm.bytes_by_kind["x"] == 128  # two 64 B blocks

    def test_zero_transfer_completes_immediately(self, sim, hbm):
        done = []
        hbm.transfer(0, on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_completion_includes_latency(self, sim, hbm, tiny_config):
        done = []
        hbm.transfer(64 * 1000, on_done=lambda: done.append(sim.now))
        sim.run()
        serialization = 64 * 1000 / tiny_config.dram_bytes_per_cycle
        expected = serialization + tiny_config.dram_latency_cycles
        assert done[0] == pytest.approx(expected)

    def test_inference_priority_preempts_queue(self, sim, hbm):
        done = []
        hbm.transfer(64 * 100)  # occupies the channel
        hbm.transfer(64, kind="train", priority=PRIORITY_TRAINING,
                     on_done=lambda: done.append("train"))
        hbm.transfer(64, kind="inf", priority=PRIORITY_INFERENCE,
                     on_done=lambda: done.append("inf"))
        sim.run()
        assert done == ["inf", "train"]

    def test_bytes_by_kind_accumulates(self, sim, hbm):
        hbm.transfer(64, kind="a")
        hbm.transfer(64, kind="a")
        hbm.transfer(64, kind="b")
        sim.run()
        assert hbm.bytes_by_kind == {"a": 128.0, "b": 64.0}

    def test_achieved_bandwidth(self, sim, hbm, tiny_config):
        hbm.transfer(tiny_config.dram_bytes_per_cycle * 50)
        sim.run(until=100)
        # Half the window busy, so half the pin rate (modulo the final
        # block's round-up).
        assert hbm.achieved_gb_s(100) == pytest.approx(
            tiny_config.dram.bandwidth_bytes_per_s / 2 / 1e9, rel=0.01
        )

    def test_utilization_caps_at_one(self, sim, hbm, tiny_config):
        hbm.transfer(tiny_config.dram_bytes_per_cycle * 100)
        sim.run()
        assert hbm.utilization() <= 1.0
