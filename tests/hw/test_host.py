"""Host interface and service installation."""

import pytest

from repro.hw.host import HostInterface, HostLinkSpec, ServiceInstallationError
from repro.hw.instructions import assemble_inference, assemble_training
from repro.models.lstm import deepbench_lstm


@pytest.fixture
def host(sim, small_config):
    return HostInterface(sim, small_config)


class TestInstallation:
    def test_install_transfers_code_and_model(self, sim, host, small_config):
        model = deepbench_lstm(hidden=256, steps=2)
        image = assemble_inference(model, small_config)
        launched = []
        host.install("inference", model, image,
                     on_launched=lambda: launched.append(sim.now))
        sim.run()
        assert launched and launched[0] > 0
        assert host.services["inference"].is_launched
        assert host.installation_time_s("inference") > 0

    def test_installation_time_scales_with_model(self, sim, small_config):
        times = []
        for hidden in (128, 1024):
            host = HostInterface(sim, small_config)
            model = deepbench_lstm(hidden=hidden, steps=2)
            host.install("inference", model,
                         assemble_inference(model, small_config))
            sim.run()
            times.append(host.installation_time_s("inference"))
        assert times[1] > times[0]

    def test_training_install_skips_weight_upload(self, sim, host, small_config):
        """Training weights stay DRAM-resident (paper §2.2): only the
        instruction image crosses the link at install time."""
        model = deepbench_lstm(hidden=256, steps=2)
        host.install("training", model,
                     assemble_training(model, small_config))
        sim.run()
        install_cycles = host.services["training"].install_completed_cycle
        image_bytes = host.services["training"].image.bytes
        per_cycle = host.link.bandwidth_bytes_per_s / small_config.frequency_hz
        expected = (
            image_bytes / per_cycle
            + host.link.latency_us * 1e-6 * small_config.frequency_hz
        )
        assert install_cycles == pytest.approx(expected, rel=0.01)

    def test_duplicate_service_rejected(self, host, small_config):
        model = deepbench_lstm(hidden=128, steps=2)
        image = assemble_inference(model, small_config)
        host.install("inference", model, image)
        with pytest.raises(ServiceInstallationError):
            host.install("inference", model, image)

    def test_oversized_model_rejected(self, host, small_config):
        # 16k hidden -> 4 GiB of weights, far beyond the 50 MB buffer.
        model = deepbench_lstm(hidden=16384, steps=2)
        with pytest.raises(ServiceInstallationError, match="weight buffer"):
            host.install(
                "inference", model, assemble_inference(model, small_config)
            )

    def test_uninstall_frees_slot(self, host, small_config):
        model = deepbench_lstm(hidden=128, steps=2)
        image = assemble_inference(model, small_config)
        host.install("inference", model, image)
        host.uninstall("inference")
        host.install("inference", model, image)


class TestRequestTraffic:
    def test_request_response_accounting(self, sim, host):
        host.request_in(4096)
        host.response_out(1024)
        sim.run()
        assert host.request_bytes_in == 4096
        assert host.response_bytes_out == 1024

    def test_link_latency_applied(self, sim, host, small_config):
        done = []
        host.request_in(0.0, on_done=lambda: done.append(sim.now))
        host.request_in(32_000, on_done=lambda: done.append(sim.now))
        sim.run()
        latency = HostLinkSpec().latency_us * 1e-6 * small_config.frequency_hz
        assert done[0] >= 0
        assert done[1] >= latency
