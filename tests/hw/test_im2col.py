"""im2col lowering: functional correctness and GEMM shapes."""

import numpy as np
import pytest

from repro.hw.im2col import ConvShape, Im2ColUnit, im2col, lowered_conv_gemm


def _reference_conv(images, kernels, stride, padding):
    """Direct convolution for cross-checking the lowered GEMM."""
    b, c, h, w = images.shape
    out_c, _, k, _ = kernels.shape
    padded = np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - k) // stride + 1
    out_w = (w + 2 * padding - k) // stride + 1
    out = np.zeros((b, out_c, out_h, out_w), dtype=np.float32)
    for y in range(out_h):
        for x in range(out_w):
            patch = padded[
                :, :, y * stride : y * stride + k, x * stride : x * stride + k
            ]
            out[:, :, y, x] = np.einsum("bcij,ocij->bo", patch, kernels)
    return out


class TestConvShape:
    def test_output_dimensions(self):
        shape = ConvShape(
            in_channels=3, out_channels=8, kernel=3, stride=2, padding=1,
            in_height=8, in_width=8,
        )
        assert shape.out_height == 4
        assert shape.out_width == 4
        assert shape.output_positions == 16

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            ConvShape(in_channels=0, out_channels=1, kernel=1)

    def test_gemm_shape(self):
        shape = ConvShape(
            in_channels=16, out_channels=32, kernel=3, stride=1, padding=1,
            in_height=8, in_width=8,
        )
        m, k, n = lowered_conv_gemm(shape, batch=4)
        assert m == 4 * 64
        assert k == 9 * 16
        assert n == 32


class TestIm2ColFunctional:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_lowered_gemm_equals_convolution(self, stride, padding):
        rng = np.random.default_rng(stride * 10 + padding)
        images = rng.standard_normal((2, 3, 7, 7)).astype(np.float32)
        kernels = rng.standard_normal((5, 3, 3, 3)).astype(np.float32)
        cols = im2col(images, kernel=3, stride=stride, padding=padding)
        flat_k = kernels.reshape(5, -1).T  # (k²·C, out_c) matching cols
        lowered = cols @ flat_k
        reference = _reference_conv(images, kernels, stride, padding)
        out_h = reference.shape[2]
        out_w = reference.shape[3]
        lowered = lowered.reshape(2, out_h, out_w, 5).transpose(0, 3, 1, 2)
        np.testing.assert_allclose(lowered, reference, rtol=1e-4, atol=1e-4)

    def test_rejects_non_nchw(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((3, 7, 7)), kernel=3)

    def test_rejects_oversized_kernel(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 1, 4, 4)), kernel=9)

    def test_row_count(self):
        cols = im2col(np.zeros((2, 3, 6, 6)), kernel=3, stride=1, padding=0)
        assert cols.shape == (2 * 16, 27)


class TestIm2ColUnit:
    def test_lowering_bytes(self):
        shape = ConvShape(
            in_channels=4, out_channels=8, kernel=3, in_height=6, in_width=6,
        )
        unit = Im2ColUnit(operand_bytes=1.0)
        m, k, _ = lowered_conv_gemm(shape, batch=2)
        assert unit.lowering_bytes(shape, batch=2) == pytest.approx(m * k)
