"""Static instruction images and the decoder."""

import pytest

from repro.hw.config import AcceleratorConfig
from repro.hw.instructions import (
    INSTRUCTION_BYTES,
    Instruction,
    Opcode,
    assemble_inference,
    assemble_training,
)
from repro.models.lstm import deepbench_lstm
from repro.models.resnet import resnet50


@pytest.fixture
def config():
    return AcceleratorConfig(name="isa", n=16, m=8, w=8, frequency_hz=1e9)


class TestDecoder:
    def test_matmul_raises_datapath_signals(self):
        signals = Instruction(Opcode.MATMUL_TILE, (0, 0, 0)).decode()
        assert "mmu_issue" in signals
        assert "weight_buffer_read" in signals

    def test_data_movement_raises_interface_signals(self):
        assert "dram_read" in Instruction(Opcode.LOAD_WEIGHTS).decode()
        assert "dram_write" in Instruction(Opcode.STORE_OUTPUT).decode()

    def test_every_opcode_decodes(self):
        for opcode in Opcode:
            assert Instruction(opcode).decode()


class TestInferenceImage:
    def test_matmul_count_is_k_tile_chain(self, config, tiny_model):
        """Row passes and column groups compress into hardware loops;
        only the K-tile accumulation chain is materialized."""
        import math

        image = assemble_inference(tiny_model, config)
        layer = tiny_model.layers[0]
        expected = math.ceil(layer.k / config.tile_k)
        assert image.histogram()[Opcode.MATMUL_TILE] == expected

    def test_recurrence_uses_hardware_loop(self, config, tiny_model):
        image = assemble_inference(tiny_model, config)
        assert image.histogram().get(Opcode.LOOP, 0) >= 1

    def test_lstm_image_fits_instruction_buffer(self, config):
        """The paper's 32 KB instruction buffer holds the LSTM service:
        recurrent steps share their tile instructions via the repeat
        counter."""
        image = assemble_inference(deepbench_lstm(), config)
        assert image.fits(config, share=0.5)

    def test_bytes_accounting(self, config, tiny_model):
        image = assemble_inference(tiny_model, config)
        assert image.bytes == image.count * INSTRUCTION_BYTES

    def test_resnet_image_much_larger_than_lstm(self, config):
        lstm = assemble_inference(deepbench_lstm(), config)
        cnn = assemble_inference(resnet50(image_size=64, conv_batch=2), config)
        assert cnn.count > 5 * lstm.count


class TestTrainingImage:
    def test_streams_weights_every_layer_pass(self, config, tiny_model):
        image = assemble_training(tiny_model, config, batch=16)
        # One load per fwd/dgrad layer block plus the fresh-model
        # download (the per-step restream is the LOOP's repetition).
        assert image.histogram()[Opcode.LOAD_WEIGHTS] == 2 * len(
            tiny_model.layers
        ) + 1

    def test_has_gradient_stores(self, config, tiny_model):
        image = assemble_training(tiny_model, config, batch=16)
        assert image.histogram()[Opcode.STORE_OUTPUT] >= len(tiny_model.layers)

    def test_both_services_space_share_the_buffer(self, config):
        inference = assemble_inference(deepbench_lstm(), config)
        training = assemble_training(deepbench_lstm(), config)
        total = inference.bytes + training.bytes
        assert total <= config.sram.instruction_bytes
