"""Job and program containers."""

import pytest

from repro.hw.isa import DRAMRequest, MMUJob, Program, SIMDJob, StepProgram


def _job(cycles=10.0, rows=4, macs=100.0, util=0.8, weight_bytes=0.0):
    return MMUJob(
        cycles=cycles, rows=rows, macs=macs, utilization=util,
        weight_bytes=weight_bytes,
    )


class TestMMUJob:
    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            _job(cycles=-1)

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            _job(util=1.5)

    def test_frozen(self):
        job = _job()
        with pytest.raises(AttributeError):
            job.cycles = 5.0


class TestStepProgram:
    def test_aggregates(self):
        step = StepProgram(
            mmu_jobs=[_job(cycles=10, macs=100, weight_bytes=8),
                      _job(cycles=20, macs=200, weight_bytes=8)],
            simd=SIMDJob(cycles=3),
            dram=[DRAMRequest(64, "stash_out"), DRAMRequest(32, "stash_in")],
        )
        assert step.mmu_cycles == 30
        assert step.macs == 300
        assert step.useful_macs == pytest.approx(240)
        assert step.weight_bytes == 16
        assert step.dram_bytes == 96

    def test_empty_step(self):
        step = StepProgram()
        assert step.mmu_cycles == 0
        assert step.simd.cycles == 0.0


class TestProgram:
    def _program(self):
        steps = [
            StepProgram(mmu_jobs=[_job(cycles=10, macs=100, weight_bytes=4)],
                        simd=SIMDJob(cycles=2)),
            StepProgram(mmu_jobs=[_job(cycles=30, macs=300)],
                        simd=SIMDJob(cycles=1),
                        dram=[DRAMRequest(128, "stash_out")]),
        ]
        return Program(name="p", steps=steps, rows=4, useful_ops_per_row=50.0)

    def test_totals(self):
        program = self._program()
        assert program.total_mmu_cycles == 40
        assert program.total_simd_cycles == 3
        assert program.total_weight_bytes == 4
        assert program.total_dram_bytes == 132
        assert program.step_count == 2

    def test_useful_ops(self):
        program = self._program()
        assert program.total_useful_ops == pytest.approx(2 * (80 + 240))
