"""MMU arbiter: queues, accounting, pipelining, policy interaction."""

import pytest

from repro.core.scheduler import FairScheduler, PriorityScheduler
from repro.hw.isa import MMUJob
from repro.hw.mmu import MatrixMultiplyUnit


def _job(cycles=10.0, rows=4, util=1.0):
    return MMUJob(cycles=cycles, rows=rows, macs=cycles * 100, utilization=util)


@pytest.fixture
def mmu(sim, tiny_config):
    return MatrixMultiplyUnit(sim, tiny_config)


class TestIssue:
    def test_fifo_without_policy(self, sim, mmu):
        order = []
        mmu.issue(_job(10), 4, "inference", on_issue=lambda: order.append("a"))
        mmu.issue(_job(10), 4, "inference", on_issue=lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b"]

    def test_on_done_fires_after_drain(self, sim, mmu, tiny_config):
        done = []
        mmu.issue(_job(10), 4, "inference", on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [10.0 + tiny_config.pipeline_drain_cycles]

    def test_pipelined_issue_during_drain(self, sim, mmu, tiny_config):
        """A second job starts issuing while the first drains."""
        starts = []
        mmu.issue(_job(10), 4, "inference", on_issue=lambda: starts.append(sim.now))
        mmu.issue(_job(10), 4, "inference", on_issue=lambda: starts.append(sim.now))
        sim.run()
        assert starts == [0.0, 10.0]  # not delayed by the drain

    def test_rejects_bad_real_rows(self, mmu):
        with pytest.raises(ValueError):
            mmu.issue(_job(rows=4), 5, "inference")

    def test_rejects_unknown_queue(self, mmu):
        with pytest.raises(KeyError):
            mmu.issue(_job(), 4, "inference", queue="prefetch")


class TestIssueBatch:
    def test_timing_identical_to_scalar_issues(self, sim, tiny_config):
        """One pump for a whole stream must reproduce the per-job-pump
        schedule exactly — pump() is a no-op while the unit is busy."""
        records = {}
        for mode in ("scalar", "batch"):
            local = type(sim)()
            mmu = MatrixMultiplyUnit(local, tiny_config)
            events = []
            jobs = [_job(10, rows=4), _job(7, rows=4), _job(3, rows=2)]

            def on_issue(events=events, local=local):
                events.append(("issue", local.now))

            def on_done(events=events, local=local):
                events.append(("done", local.now))

            if mode == "scalar":
                for job in jobs:
                    mmu.issue(job, min(3, job.rows), "inference",
                              on_done=on_done, on_issue=on_issue)
            else:
                count = mmu.issue_batch(
                    jobs,
                    real_rows_fn=lambda job: min(3, job.rows),
                    context="inference",
                    on_done=on_done,
                    on_issue=on_issue,
                )
                assert count == 3
            local.run()
            records[mode] = (events, local.now, local.events_processed)
        assert records["scalar"] == records["batch"]

    def test_empty_stream_is_a_no_op(self, sim, mmu):
        assert mmu.issue_batch([], lambda job: 0, "inference") == 0
        sim.run()
        assert sim.events_processed == 0

    def test_rejects_bad_real_rows(self, mmu):
        with pytest.raises(ValueError):
            mmu.issue_batch(
                [_job(rows=4)], lambda job: job.rows + 1, "inference"
            )

    def test_rejects_unknown_queue(self, mmu):
        with pytest.raises(KeyError):
            mmu.issue_batch(
                [_job()], lambda job: job.rows, "inference", queue="prefetch"
            )


class TestAccounting:
    def test_full_batch_all_working(self, sim, mmu):
        mmu.issue(_job(cycles=10, rows=4, util=1.0), 4, "inference")
        sim.run()
        assert mmu.accounting.busy_total() == 10
        assert mmu.breakdown(20)["working"] == pytest.approx(0.5)
        assert mmu.breakdown(20)["idle"] == pytest.approx(0.5)

    def test_padded_batch_splits_dummy(self, sim, mmu):
        mmu.issue(_job(cycles=10, rows=4, util=1.0), 1, "inference")
        sim.run()
        breakdown = mmu.breakdown(10)
        assert breakdown["working"] == pytest.approx(0.25)
        assert breakdown["dummy"] == pytest.approx(0.75)

    def test_utilization_mismatch_is_other(self, sim, mmu):
        mmu.issue(_job(cycles=10, rows=4, util=0.6), 4, "inference")
        sim.run()
        assert mmu.breakdown(10)["other"] == pytest.approx(0.4)

    def test_useful_ops_scale_with_real_rows(self, sim, mmu):
        mmu.issue(_job(cycles=10, rows=4, util=1.0), 2, "inference")
        sim.run()
        # macs = 1000, half the rows real -> 2*1000*0.5 useful ops.
        assert mmu.throughput.total_ops == pytest.approx(1000.0)

    def test_per_context_attribution(self, sim, mmu):
        mmu.issue(_job(cycles=10, rows=4), 4, "inference")
        mmu.issue(_job(cycles=30, rows=4), 4, "training")
        sim.run()
        assert mmu.busy_by_context["inference"] == 10
        assert mmu.busy_by_context["training"] == 30
        assert mmu.context_top_s("inference", 40) > 0
        assert mmu.context_top_s("idle-context", 40) == 0.0


class TestPolicyArbitration:
    def test_fair_round_robins(self, sim, mmu):
        mmu.set_policy(FairScheduler(), lambda: 0)
        order = []
        for label in ("i1", "i2"):
            mmu.issue(_job(10), 4, "inference",
                      on_issue=lambda label=label: order.append(label))
        for label in ("t1", "t2"):
            mmu.issue(_job(10), 4, "training",
                      on_issue=lambda label=label: order.append(label),
                      queue="training")
        sim.run()
        assert order == ["i1", "t1", "i2", "t2"]

    def test_priority_blocks_training_during_spike(self, sim, mmu):
        backlog = [100]
        mmu.set_policy(PriorityScheduler(queue_threshold=10), lambda: backlog[0])
        issued = []
        mmu.issue(_job(10), 4, "training",
                  on_issue=lambda: issued.append(sim.now), queue="training")
        sim.run()
        assert issued == []  # held by the spike guard
        backlog[0] = 0
        mmu.pump()
        sim.run()
        assert issued == [sim.now - 10] or len(issued) == 1

    def test_priority_round_robins_below_threshold(self, sim, mmu):
        mmu.set_policy(PriorityScheduler(queue_threshold=10), lambda: 0)
        order = []
        mmu.issue(_job(10), 4, "inference", on_issue=lambda: order.append("i"))
        mmu.issue(_job(10), 4, "inference", on_issue=lambda: order.append("i"))
        mmu.issue(_job(10), 4, "training",
                  on_issue=lambda: order.append("t"), queue="training")
        sim.run()
        assert order == ["i", "t", "i"]

    def test_queue_depths(self, sim, mmu):
        mmu.issue(_job(10), 4, "inference")
        mmu.issue(_job(10), 4, "inference")
        mmu.issue(_job(10), 4, "training", queue="training")
        assert mmu.queue_depth_of("inference") == 1  # one already granted
        assert mmu.queue_depth_of("training") == 1
        assert mmu.queue_depth == 2
