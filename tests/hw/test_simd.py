"""SIMD unit model."""

import pytest

from repro.hw.isa import SIMDJob
from repro.hw.simd import SIMDUnit


@pytest.fixture
def simd(sim, tiny_config):
    return SIMDUnit(sim, tiny_config)


class TestSIMD:
    def test_zero_cycle_job_completes_immediately(self, sim, simd):
        done = []
        simd.issue(SIMDJob(cycles=0.0), on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_occupancy(self, sim, simd):
        done = []
        simd.issue(SIMDJob(cycles=25.0), on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [25.0]

    def test_jobs_serialize(self, sim, simd):
        done = []
        simd.issue(SIMDJob(cycles=10.0), on_done=lambda: done.append(sim.now))
        simd.issue(SIMDJob(cycles=10.0), on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [10.0, 20.0]

    def test_priority(self, sim, simd):
        done = []
        simd.issue(SIMDJob(cycles=10.0))
        simd.issue(SIMDJob(cycles=1.0), priority=1,
                   on_done=lambda: done.append("train"))
        simd.issue(SIMDJob(cycles=1.0), priority=0,
                   on_done=lambda: done.append("inf"))
        sim.run()
        assert done == ["inf", "train"]

    def test_ops_retired(self, sim, simd):
        simd.issue(SIMDJob(cycles=5.0, ops=123.0))
        sim.run()
        assert simd.ops_retired == 123.0

    def test_utilization(self, sim, simd):
        simd.issue(SIMDJob(cycles=40.0))
        sim.run(until=80)
        assert simd.utilization() == pytest.approx(0.5)
