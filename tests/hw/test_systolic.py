"""Functional systolic array — the reproduction's RTL-trace validation.

These tests pin the event-driven MMU model's timing formulas to a
register-level array simulation, the same role RTL traces play in the
paper's methodology (§5).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.config import AcceleratorConfig
from repro.hw.systolic import SystolicArray, systolic_latency_cycles


def _array(n, w, seed=0):
    rng = np.random.default_rng(seed)
    weights = rng.standard_normal((n * w, n))
    return SystolicArray(n, w, weights), weights


class TestNumericCorrectness:
    @pytest.mark.parametrize("n,w,rows", [(1, 1, 1), (2, 2, 3), (4, 2, 8), (3, 4, 5)])
    def test_matches_matmul(self, n, w, rows):
        array, weights = _array(n, w, seed=n * 10 + w)
        x = np.random.default_rng(rows).standard_normal((rows, n * w))
        outputs, _, _ = array.run(x)
        np.testing.assert_allclose(outputs, x @ weights, rtol=1e-9, atol=1e-9)

    def test_single_pe(self):
        array, weights = _array(1, 1)
        x = np.array([[2.0], [3.0]])
        outputs, _, _ = array.run(x)
        np.testing.assert_allclose(outputs, x @ weights)

    @given(
        st.integers(1, 5), st.integers(1, 4), st.integers(1, 8),
        st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_matmul_property(self, n, w, rows, seed):
        array, weights = _array(n, w, seed=seed)
        x = np.random.default_rng(seed + 1).standard_normal((rows, n * w))
        outputs, _, _ = array.run(x)
        np.testing.assert_allclose(outputs, x @ weights, rtol=1e-9, atol=1e-9)


class TestTiming:
    @pytest.mark.parametrize("n,w,rows", [(1, 1, 1), (2, 2, 4), (4, 2, 8), (3, 3, 2)])
    def test_last_output_matches_formula(self, n, w, rows):
        array, _ = _array(n, w)
        x = np.ones((rows, n * w))
        _, last_cycle, _ = array.run(x)
        assert last_cycle == systolic_latency_cycles(rows, n, w)

    def test_completion_order_row_major_per_column(self):
        array, _ = _array(3, 2)
        x = np.ones((4, 6))
        _, _, completion = array.run(x)
        # Within a column, outputs complete one row per cycle.
        assert np.all(np.diff(completion[:, 0]) == 1)
        # Across columns, the skew adds one cycle per column.
        assert np.all(np.diff(completion[0, :]) == 1)

    def test_occupancy_is_one_row_per_cycle(self):
        """Doubling the streamed rows delays the last output by exactly
        the extra rows — the occupancy the event model charges."""
        array, _ = _array(2, 3)
        _, t_small, _ = array.run(np.ones((4, 6)))
        _, t_large, _ = array.run(np.ones((8, 6)))
        assert t_large - t_small == 4

    def test_drain_bound_matches_event_model(self):
        """The event model's pipeline_drain_cycles upper-bounds (within
        one cycle) the functional array's drain for matching (n, w)."""
        for n, w in [(1, 1), (2, 2), (4, 2), (3, 4)]:
            config = AcceleratorConfig(
                name="probe", n=n, m=1, w=w, frequency_hz=1e9
            )
            rows = 5
            functional_drain = systolic_latency_cycles(rows, n, w) - rows
            assert config.pipeline_drain_cycles - 1 == functional_drain

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_latency_formula_property(self, n, w, rows):
        array, _ = _array(n, w)
        _, last_cycle, completion = array.run(np.ones((rows, n * w)))
        assert last_cycle == rows + (n - 1) + n + n * w
        assert completion.max() == last_cycle


class TestRunStream:
    """A tile stream is one timeline: per-tile runs with cumulative row
    offsets must equal the stream entry point, bit for bit."""

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_equals_per_tile_runs_with_offsets(self, backend):
        array, _ = _array(3, 2, seed=9)
        rng = np.random.default_rng(21)
        tiles = [rng.standard_normal((r, 6)) for r in (4, 1, 7, 2)]
        outs, last_cycle, completions = array.run_stream(
            tiles, backend=backend
        )
        offset = 0
        for tile, out, completion in zip(tiles, outs, completions):
            ref_out, ref_last, ref_completion = array.run(
                tile, backend=backend
            )
            assert np.array_equal(out, ref_out)
            assert np.array_equal(completion, ref_completion + offset)
            offset += tile.shape[0]
        assert last_cycle == offset + (3 - 1) + 3 + 3 * 2

    def test_backends_bit_identical(self):
        array, _ = _array(4, 3, seed=10)
        rng = np.random.default_rng(22)
        tiles = [rng.standard_normal((r, 12)) for r in (5, 1, 3)]
        ref = array.run_stream(tiles, backend="reference")
        fast = array.run_stream(tiles, backend="fast")
        assert ref[1] == fast[1]
        for a, b in zip(ref[0], fast[0]):
            assert np.array_equal(a, b)
        for a, b in zip(ref[2], fast[2]):
            assert np.array_equal(a, b)

    def test_empty_stream(self):
        array, _ = _array(2, 2)
        outs, last_cycle, completions = array.run_stream([])
        assert outs == [] and completions == [] and last_cycle == 0

    def test_rejects_bad_tile_shape(self):
        array, _ = _array(2, 2)
        with pytest.raises(ValueError, match="stream tile 1"):
            array.run_stream([np.zeros((2, 4)), np.zeros((2, 5))])


class TestValidation:
    def test_rejects_bad_weight_shape(self):
        with pytest.raises(ValueError):
            SystolicArray(2, 2, np.zeros((3, 2)))

    def test_rejects_bad_activation_shape(self):
        array, _ = _array(2, 2)
        with pytest.raises(ValueError):
            array.run(np.zeros((3, 5)))

    def test_rejects_empty_activations(self):
        array, _ = _array(2, 2)
        with pytest.raises(ValueError):
            array.run(np.zeros((0, 4)))
