"""Cross-module integration: the paper's claims at test scale.

These tests run the full stack — DSE-selected configurations, compiled
DeepBench models, the event-driven datapath, the Equinox front-end —
and assert the *shapes* the paper reports. They use reduced request
counts so the whole module stays under a minute.
"""

import pytest

from repro.core.equinox import EquinoxAccelerator
from repro.dse.table1 import equinox_configuration
from repro.models.lstm import deepbench_lstm
from repro.models.training import build_training_plan


def _run(latency_class, load, training=False, scheduler="priority",
         batching="adaptive", batches=6, seed=0, **kwargs):
    config = equinox_configuration(latency_class)
    acc = EquinoxAccelerator(
        config, deepbench_lstm(),
        training_model=deepbench_lstm() if training else None,
        scheduler=scheduler if training else "inference_only",
        batching=batching, **kwargs,
    )
    report = acc.run(
        load=load, requests=max(400, batches * acc.batch_slots), seed=seed
    )
    return acc, report


class TestInferencePerformance:
    """Figure 7 shapes."""

    def test_relaxed_design_reaches_about_6x_min_throughput(self):
        _, slow = _run("min", load=0.95, batches=40)
        _, fast = _run("500us", load=0.95)
        ratio = fast.inference_top_s / slow.inference_top_s
        assert 4.0 <= ratio <= 8.0  # paper: ~6x in simulation

    def test_measured_throughput_below_analytic_peak(self):
        acc, report = _run("500us", load=0.95)
        assert report.inference_top_s <= acc.peak_inference_top_s() * 1.01

    def test_low_load_p99_bounded_by_formation_timeout(self):
        """At low load the 500µs design's p99 is the adaptive-batching
        wait plus the service time, not an open queue."""
        acc, report = _run("500us", load=0.1)
        timeout = 2.0 * acc.batch_service_us()
        service = acc.batch_service_us()
        assert report.p99_latency_us <= timeout + 2.5 * service

    def test_latency_target_met_across_loads(self):
        reference = EquinoxAccelerator(
            equinox_configuration("500us"), deepbench_lstm()
        )
        target_us = 10.0 * reference.batch_service_us()
        for load in (0.3, 0.7):
            _, report = _run("500us", load=load)
            assert report.p99_latency_us <= target_us


class TestCycleBreakdown:
    """Figure 8 shapes."""

    def test_low_load_is_mostly_idle_and_dummy(self):
        _, report = _run("500us", load=0.05)
        breakdown = report.cycle_breakdown
        assert breakdown["idle"] > 0.25
        assert breakdown["dummy"] > 0.2
        assert breakdown["working"] < 0.25

    def test_training_reclaims_idle(self):
        _, without = _run("500us", load=0.05)
        _, with_training = _run("500us", load=0.05, training=True)
        assert (
            with_training.cycle_breakdown["idle"]
            < without.cycle_breakdown["idle"] - 0.1
        )

    def test_saturation_starves_training(self):
        _, low = _run("500us", load=0.3, training=True, batches=10)
        _, high = _run("500us", load=1.05, training=True, batches=10)
        assert high.training_top_s < low.training_top_s / 2


class TestTrainingThroughput:
    """Figure 9 / Table 2 shapes."""

    def test_500us_harvests_most_of_dedicated_at_60pct(self):
        config = equinox_configuration("500us")
        dedicated = build_training_plan(
            deepbench_lstm(), config
        ).dedicated_throughput_top_s()
        _, report = _run("500us", load=0.6, training=True, batches=10)
        fraction = report.training_top_s / dedicated
        assert 0.45 <= fraction <= 1.0  # paper: 78%

    def test_min_design_harvests_little(self):
        config = equinox_configuration("none")
        dedicated = build_training_plan(
            deepbench_lstm(), config
        ).dedicated_throughput_top_s()
        _, report = _run("min", load=0.6, training=True, batches=60)
        assert report.training_top_s / dedicated < 0.35  # paper: 19%

    def test_training_declines_with_load(self):
        values = []
        for load in (0.2, 0.6, 0.95):
            _, report = _run("500us", load=load, training=True, batches=8)
            values.append(report.training_top_s)
        assert values[0] > values[1] > values[2]


class TestScheduling:
    """Figure 10 shapes."""

    def test_priority_beats_fair_on_tail_latency_under_pressure(self):
        """The policies only diverge when the inference queue spikes
        past the threshold: under pressure, priority stops training and
        holds the tail down while fair keeps splitting issue slots."""
        _, fair = _run("500us", load=1.1, training=True, scheduler="fair",
                       batches=14)
        _, priority = _run("500us", load=1.1, training=True,
                           scheduler="priority", batches=14)
        assert priority.p99_latency_us < fair.p99_latency_us
        assert priority.inference_top_s >= fair.inference_top_s

    def test_priority_matches_inference_only_throughput(self):
        _, alone = _run("500us", load=0.9, batches=10)
        _, piggy = _run("500us", load=0.9, training=True, batches=10)
        assert piggy.inference_top_s >= 0.9 * alone.inference_top_s


class TestAdaptiveBatching:
    """Figure 11 shapes."""

    def test_static_batching_blows_up_at_low_load(self):
        _, static = _run("500us", load=0.15, batching="static")
        _, adaptive = _run("500us", load=0.15, batching="adaptive")
        assert static.p99_latency_us > 2 * adaptive.p99_latency_us

    def test_policies_converge_at_high_load(self):
        _, static = _run("500us", load=0.95, batching="static")
        _, adaptive = _run("500us", load=0.95, batching="adaptive")
        assert static.p99_latency_us == pytest.approx(
            adaptive.p99_latency_us, rel=0.5
        )

    def test_larger_threshold_raises_low_load_p99(self):
        _, tight = _run("500us", load=0.2, batch_timeout_x=2.0)
        _, loose = _run("500us", load=0.2, batch_timeout_x=10.0)
        assert loose.p99_latency_us > tight.p99_latency_us

    def test_few_incomplete_batches_at_high_load(self):
        _, report = _run("500us", load=0.95, batches=12)
        assert report.incomplete_batches <= 0.25 * report.batches_completed
