"""End-to-end backend equivalence through the public entry points.

The parity corpus checks implementations; these tests check the
*wrappers* — that ``backend=`` threads all the way down, that ambient
switching changes which side runs (observable via dispatch counters),
and that results stay bit-identical through the composed pipelines
(hbfp GEMM, functional models, conv lowering).
"""

import numpy as np
import pytest

from repro import kernels
from repro.arith.bfp import BFPFormat, BlockFloatTensor, bfp_matmul
from repro.arith.hbfp import hbfp_gemm
from repro.hw.im2col import im2col
from repro.hw.systolic import SystolicArray


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = kernels.get_backend()
    yield
    kernels.set_backend(previous)


FMT = BFPFormat(mantissa_bits=8, exponent_bits=12, block_rows=16,
                block_cols=16)


def _runnable_backends():
    """Backends an explicit set_backend/use_backend can select here —
    the compiled tier only where numba is importable."""
    return [
        b for b in kernels.BACKENDS
        if b != "compiled" or kernels.compiled_available()
    ]


def _operands(seed=3, shape=(33, 47)):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape)


class TestBfpWrappers:
    def test_from_float_backends_bit_identical(self):
        x = _operands()
        ref = BlockFloatTensor.from_float(x, FMT, backend="reference")
        fast = BlockFloatTensor.from_float(x, FMT, backend="fast")
        assert np.array_equal(ref.mantissas, fast.mantissas)
        assert np.array_equal(ref.exponents, fast.exponents)
        assert np.array_equal(ref.to_float(backend="reference"),
                              fast.to_float(backend="fast"))

    def test_stochastic_rounding_consumes_identical_randomness(self):
        x = _operands(seed=9)
        states = {}
        for backend in kernels.BACKENDS:
            rng = np.random.default_rng(1234)
            BlockFloatTensor.from_float(
                x, FMT, rounding="stochastic", rng=rng, backend=backend
            )
            states[backend] = rng.bit_generator.state
        assert states["reference"] == states["fast"]

    def test_bfp_matmul_backends_bit_identical(self):
        a = BlockFloatTensor.from_float(_operands(1, (32, 64)), FMT)
        b = BlockFloatTensor.from_float(_operands(2, (64, 48)), FMT)
        ref = bfp_matmul(a, b, backend="reference")
        fast = bfp_matmul(a, b, backend="fast")
        assert np.array_equal(ref, fast)

    def test_ambient_backend_reaches_the_wrappers(self):
        x = _operands()
        kernels.reset_dispatch_counts()
        with kernels.use_backend("reference"):
            BlockFloatTensor.from_float(x, FMT)
        counts = kernels.dispatch_counts()["bfp.quantize"]
        assert counts == {"reference": 1}
        kernels.reset_dispatch_counts()


class TestHwWrappers:
    def test_systolic_backends_agree_on_values_and_cycles(self):
        rng = np.random.default_rng(5)
        n, w, rows = 4, 3, 11
        weights = rng.standard_normal((n * w, n))
        x = rng.standard_normal((rows, n * w))
        array = SystolicArray(n, w, weights)
        ref_out, ref_last, ref_done = array.run(x, backend="reference")
        fast_out, fast_last, fast_done = array.run(x, backend="fast")
        assert np.array_equal(ref_out, fast_out)
        assert ref_last == fast_last
        assert np.array_equal(ref_done, fast_done)

    def test_im2col_backends_bit_identical(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((2, 3, 9, 7)).astype(np.float32)
        ref = im2col(x, 3, stride=2, padding=1, backend="reference")
        fast = im2col(x, 3, stride=2, padding=1, backend="fast")
        assert np.array_equal(ref, fast)


class TestComposedPipelines:
    def test_hbfp_gemm_backend_invariant(self):
        a = _operands(11, (40, 56)).astype(np.float32)
        b = _operands(12, (56, 24)).astype(np.float32)
        ref = hbfp_gemm(a, b, backend="reference")
        fast = hbfp_gemm(a, b, backend="fast")
        assert np.array_equal(ref, fast)

    def test_functional_mlp_backend_invariant(self):
        from repro.models.functional import FunctionalMLP

        x = _operands(13, (8, 48)).astype(np.float32)
        outs = {}
        for backend in _runnable_backends():
            model = FunctionalMLP(
                [48, 32, 16], encoding="hbfp8",
                rng=np.random.default_rng(0),
            )
            outs[backend] = model.run(x, kernel_backend=backend)
        for backend, out in outs.items():
            assert np.array_equal(outs["reference"], out), backend

    def test_functional_lstm_backend_invariant(self):
        from repro.models.functional import FunctionalLSTMCell

        h0 = _operands(14, (4, 32)).astype(np.float32)
        outs = {}
        for backend in _runnable_backends():
            cell = FunctionalLSTMCell(
                32, encoding="hbfp8", rng=np.random.default_rng(0)
            )
            outs[backend] = cell.run(h0, steps=3, kernel_backend=backend)
        for backend, out in outs.items():
            assert np.array_equal(outs["reference"], out), backend
