"""The optional numba-compiled kernel tier and its degradation paths.

numba is deliberately not a dependency, so most of this file tests the
*absence* behavior — loud failure for explicit requests, silent
fallback for ambient ones — and the parity checks only run where numba
is importable.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import kernels
from repro.kernels import compiled, registry

REPO = Path(__file__).resolve().parents[2]

HAS_NUMBA = kernels.compiled_available()


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = kernels.get_backend()
    yield
    kernels.set_backend(previous)


class TestAvailability:
    def test_registry_mirrors_module(self):
        assert kernels.compiled_available() is compiled.available()

    def test_pairs_without_mirror_fall_back_to_fast(self):
        pair = kernels.get_kernel("systolic.stream")
        assert pair.compiled is None
        assert pair.implementation("compiled") is pair.fast

    def test_hot_pairs_carry_mirror_iff_numba(self):
        for name in ("systolic.run", "bfp.matmul", "bfp.quantize",
                     "im2col.pack"):
            pair = kernels.get_kernel(name)
            if HAS_NUMBA:
                assert pair.compiled is not None
            else:
                assert pair.compiled is None

    def test_implementation_lookup_none_without_numba(self):
        if not HAS_NUMBA:
            assert compiled.implementation("systolic.run") is None
            assert compiled.implementation("bfp.matmul") is None
            assert compiled.implementation("bfp.quantize") is None
            assert compiled.implementation("im2col.pack") is None
        assert compiled.implementation("no.such.kernel") is None


@pytest.mark.skipif(HAS_NUMBA, reason="numba importable: no degradation")
class TestWithoutNumba:
    def test_set_backend_raises(self):
        with pytest.raises(RuntimeError, match="requires numba"):
            kernels.set_backend("compiled")

    def test_use_backend_raises(self):
        with pytest.raises(RuntimeError, match="requires numba"):
            with kernels.use_backend("compiled"):
                pass  # pragma: no cover

    def test_per_call_dispatch_degrades_to_fast(self):
        impl = kernels.dispatch("systolic.run", backend="compiled")
        assert impl is kernels.get_kernel("systolic.run").fast

    def test_env_override_falls_back_to_fast(self):
        """A worker fleet with heterogeneous images must not crash on
        the machines lacking numba: the env path degrades silently."""
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        env["REPRO_KERNEL_BACKEND"] = "compiled"
        result = subprocess.run(
            [sys.executable, "-c",
             "from repro import kernels; print(kernels.get_backend())"],
            env=env, capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "fast"


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not importable")
class TestCompiledParity:
    """Where numba exists, the compiled mirrors join the bit-exactness
    contract — the same corpus, reference vs compiled."""

    def test_corpus_parity_reference_vs_compiled(self):
        from repro.kernels import parity

        problems = []
        for case in parity.corpus():
            if case.kernel not in ("systolic.run", "bfp.matmul",
                                   "bfp.quantize", "im2col.pack"):
                continue
            ref = case.run("reference")
            comp = case.run("compiled")
            for key in ref:
                problems.extend(parity._diff(f"{case.name}:{key}",
                                             ref[key], comp[key], "compiled"))
        assert problems == [], "\n".join(problems)

    def test_set_backend_compiled_roundtrip(self):
        previous = kernels.set_backend("compiled")
        assert kernels.get_backend() == "compiled"
        kernels.set_backend(previous)

    def test_systolic_run_values(self):
        rng = np.random.default_rng(3)
        n, w, rows = 3, 2, 5
        x = rng.standard_normal((rows, n * w))
        weights = rng.standard_normal((n * w, n))
        ref = kernels.dispatch("systolic.run", "reference")(x, weights, n, w)
        comp = kernels.dispatch("systolic.run", "compiled")(x, weights, n, w)
        assert np.array_equal(ref[0], comp[0])
        assert ref[1] == comp[1]
        assert np.array_equal(ref[2], comp[2])


class TestBackendsContract:
    def test_compiled_is_a_registered_backend(self):
        assert "compiled" in registry.BACKENDS

    def test_unknown_backend_still_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.dispatch("systolic.run", backend="jit")
