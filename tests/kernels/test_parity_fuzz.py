"""The bit-exactness contract, enforced: the whole parity corpus.

Every case runs its kernel under both backends and compares payloads
bit for bit — values, shared exponents, RNG stream position, systolic
cycle counts. One parametrized test per case keeps failures addressable
by name (``test_case[matmul/ragged]``).
"""

import warnings

import numpy as np
import pytest

from repro.kernels import parity

_CASES = parity.corpus()


def _case_ids():
    return [case.name for case in _CASES]


class TestCorpusShape:
    def test_covers_every_registered_kernel(self):
        from repro import kernels

        assert {case.kernel for case in _CASES} == set(kernels.kernel_names())

    def test_includes_the_degenerate_geometry(self):
        names = {case.name for case in _CASES}
        for needle in (
            "quantize/single/nearest",      # 1x1 logical shape
            "quantize/unit-blocks/nearest",  # 1x1 blocks
            "quantize/ragged/stochastic",    # shape % block != 0
            "quantize/all-zero/nearest",     # all-zero tiles
            "matmul/int64-fallback",         # off the float64 GEMM
            "matmul/saturating",             # accumulator clamp
            "systolic/1x1",
            "im2col/1x1",
        ):
            assert needle in names, f"corpus lost its {needle} case"

    def test_corpus_is_deterministic(self):
        assert _case_ids() == [case.name for case in parity.corpus()]


@pytest.mark.parametrize("case", _CASES, ids=_case_ids())
def test_case(case):
    with warnings.catch_warnings():
        # The huge-values cases overflow float32 identically under both
        # backends; the overflow itself is the scenario, not a bug.
        warnings.simplefilter("ignore", RuntimeWarning)
        problems = parity.check_case(case)
    assert problems == [], "\n".join(problems)


class TestSuiteRunner:
    def test_run_suite_reports_counts(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            cases_run, problems = parity.run_suite()
        assert cases_run == len(_CASES) > 40
        assert problems == []


class TestDiffPrimitive:
    """_diff is what the whole contract rests on — pin its semantics."""

    def test_bitwise_not_approximate(self):
        a = np.array([1.0])
        b = np.array([np.nextafter(1.0, 2.0)])  # one ulp off
        assert parity._diff("x", a, a.copy()) == []
        assert parity._diff("x", a, b) != []

    def test_dtype_mismatch_is_a_problem(self):
        a = np.zeros(3, dtype=np.float32)
        b = np.zeros(3, dtype=np.float64)
        assert any("dtype" in p for p in parity._diff("x", a, b))

    def test_shape_mismatch_is_a_problem(self):
        a = np.zeros((2, 3))
        assert any("shape" in p for p in parity._diff("x", a, a.T))

    def test_scalar_payloads_compare_by_equality(self):
        assert parity._diff("cycles", 7, 7) == []
        assert parity._diff("cycles", 7, 8) != []
