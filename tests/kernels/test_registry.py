"""Kernel-pair registry: backend selection, dispatch, counters."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import kernels
from repro.kernels import registry

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = kernels.get_backend()
    yield
    kernels.set_backend(previous)


def _other(backend):
    return "reference" if backend == "fast" else "fast"


class TestBackendSelection:
    """Ambient-relative on purpose: the CI kernels job runs this file
    under both REPRO_KERNEL_BACKEND values, so the starting backend is
    not a constant."""

    @pytest.mark.skipif(
        "REPRO_KERNEL_BACKEND" in os.environ,
        reason="ambient backend pinned by the environment",
    )
    def test_default_is_fast(self):
        assert kernels.get_backend() == "fast"

    def test_set_backend_returns_previous(self):
        ambient = kernels.get_backend()
        flipped = _other(ambient)
        assert kernels.set_backend(flipped) == ambient
        assert kernels.get_backend() == flipped
        assert kernels.set_backend(ambient) == flipped

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_backend("turbo")

    def test_use_backend_scopes_and_restores(self):
        ambient = kernels.get_backend()
        flipped = _other(ambient)
        with kernels.use_backend(flipped):
            assert kernels.get_backend() == flipped
            with kernels.use_backend(ambient):
                assert kernels.get_backend() == ambient
            assert kernels.get_backend() == flipped
        assert kernels.get_backend() == ambient

    def test_use_backend_none_is_a_no_op(self):
        flipped = _other(kernels.get_backend())
        kernels.set_backend(flipped)
        with kernels.use_backend(None):
            assert kernels.get_backend() == flipped
        assert kernels.get_backend() == flipped

    def test_use_backend_restores_on_exception(self):
        ambient = kernels.get_backend()
        with pytest.raises(RuntimeError):
            with kernels.use_backend(_other(ambient)):
                raise RuntimeError("boom")
        assert kernels.get_backend() == ambient


class TestEnvironmentOverride:
    """REPRO_KERNEL_BACKEND is read once at import — check in a fresh
    interpreter so this process's registry state stays untouched."""

    def _probe(self, value):
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        env["REPRO_KERNEL_BACKEND"] = value
        return subprocess.run(
            [sys.executable, "-c",
             "from repro import kernels; print(kernels.get_backend())"],
            env=env, capture_output=True, text=True,
        )

    def test_reference_override(self):
        result = self._probe("reference")
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "reference"

    def test_invalid_value_fails_import(self):
        result = self._probe("turbo")
        assert result.returncode != 0
        assert "unknown kernel backend" in result.stderr


class TestRegistry:
    def test_all_pairs_registered(self):
        assert kernels.kernel_names() == (
            "bfp.dequantize", "bfp.matmul", "bfp.quantize",
            "im2col.pack", "systolic.run", "systolic.stream",
        )

    def test_pair_resolves_both_sides(self):
        pair = kernels.get_kernel("bfp.matmul")
        assert pair.implementation("reference") is pair.reference
        assert pair.implementation("fast") is pair.fast
        assert pair.reference is not pair.fast

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            kernels.get_kernel("no.such.kernel")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            kernels.register_kernel(
                "bfp.matmul", lambda: None, lambda: None
            )


class TestDispatch:
    def test_dispatch_uses_ambient_backend(self):
        kernels.set_backend("reference")
        impl = kernels.dispatch("systolic.run")
        assert impl is kernels.get_kernel("systolic.run").reference

    def test_per_call_backend_wins(self):
        kernels.set_backend("reference")
        impl = kernels.dispatch("systolic.run", backend="fast")
        assert impl is kernels.get_kernel("systolic.run").fast

    def test_dispatches_are_counted_per_backend(self):
        kernels.reset_dispatch_counts()
        kernels.dispatch("im2col.pack", backend="fast")
        kernels.dispatch("im2col.pack", backend="fast")
        kernels.dispatch("im2col.pack", backend="reference")
        counts = kernels.dispatch_counts()
        assert counts["im2col.pack"] == {"fast": 2, "reference": 1}
        kernels.reset_dispatch_counts()
        assert kernels.dispatch_counts() == {}

    def test_dispatch_summary_flattens_counts(self):
        from repro.obs.profile import kernel_dispatch_summary

        kernels.reset_dispatch_counts()
        kernels.dispatch("bfp.quantize", backend="fast")
        summary = kernel_dispatch_summary()
        assert summary == {"kernels.dispatch.bfp.quantize.fast": 1.0}
        kernels.reset_dispatch_counts()


class TestRegistryModule:
    def test_backends_tuple_is_contract_order(self):
        assert registry.BACKENDS == ("reference", "fast", "compiled")

    def test_env_var_name_is_stable_api(self):
        # CI and the docs reference this name.
        assert registry.ENV_VAR == "REPRO_KERNEL_BACKEND"
