"""LSTM / GRU / ResNet50 / MLP model builders."""

import pytest

from repro.models.gru import deepbench_gru
from repro.models.lstm import deepbench_lstm
from repro.models.mlp import mlp
from repro.models.resnet import resnet50


class TestLSTM:
    def test_paper_defaults(self):
        spec = deepbench_lstm()
        (cell,) = spec.layers
        assert cell.k == 2048
        assert cell.n_out == 4 * 2048
        assert cell.repeats == 25

    def test_macs_per_sample(self):
        spec = deepbench_lstm()
        assert spec.macs_per_sample == 2048 * 8192 * 25

    def test_weights_fit_on_chip_in_hbfp8(self):
        # The inference service keeps weights SRAM-resident (50 MB).
        assert deepbench_lstm().weight_bytes(1.0) < 50 * 1024 * 1024

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            deepbench_lstm(hidden=0)


class TestGRU:
    def test_paper_defaults(self):
        spec = deepbench_gru()
        (cell,) = spec.layers
        assert cell.k == 2816
        assert cell.n_out == 3 * 2816
        assert cell.repeats == 1500

    def test_service_time_two_orders_above_lstm(self):
        # GRU's dependency chain is 60x longer with bigger steps.
        gru, lstm = deepbench_gru(), deepbench_lstm()
        assert gru.macs_per_sample > 50 * lstm.macs_per_sample


class TestResNet50:
    def test_layer_count(self):
        spec = resnet50()
        # stem + 16 blocks x 3 convs + 4 shortcuts + fc = 54 GEMMs.
        assert len(spec.layers) == 1 + 16 * 3 + 4 + 1

    def test_total_macs_near_published(self):
        # ResNet50 forward is ~4 GMACs at 224x224 (conv+fc GEMMs).
        spec = resnet50()
        assert spec.macs_per_sample == pytest.approx(4.1e9, rel=0.15)

    def test_all_layers_tall_mode(self):
        assert all(layer.mode == "tall" for layer in resnet50().layers)

    def test_spatial_dims_flow(self):
        spec = resnet50()
        by_name = {layer.name: layer for layer in spec.layers}
        # conv1 on 224² stride 2 -> 112² positions.
        assert by_name["conv1"].rows_per_sample == 112 * 112
        # conv5 stage works on 7².
        assert by_name["conv5_3_3x3"].rows_per_sample == 49

    def test_classifier_shape(self):
        fc = resnet50().layers[-1]
        assert fc.k == 2048
        assert fc.n_out == 1000

    def test_rejects_tiny_images(self):
        with pytest.raises(ValueError):
            resnet50(image_size=16)


class TestMLP:
    def test_builds_chain(self):
        spec = mlp([512, 1024, 64])
        assert [(l.k, l.n_out) for l in spec.layers] == [(512, 1024), (1024, 64)]

    def test_rejects_single_width(self):
        with pytest.raises(ValueError):
            mlp([512])

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            mlp([512, 0])
