"""Tile compiler: Figure 4 tiling, chunking, utilization, training plans."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.config import AcceleratorConfig
from repro.models.compiler import (
    TileCompiler,
    compile_inference,
    compile_training,
    tile_gemm,
    tiling_utilization,
)
from repro.models.lstm import deepbench_lstm


class TestTiling:
    def test_exact_fit_full_utilization(self, small_config):
        # rows=n, k = tile_k, n_out = column_group: no padding at all.
        tiling = tile_gemm(8, 32, 32, small_config)
        assert tiling.instructions == 1
        assert tiling.utilization(small_config) == pytest.approx(1.0)

    def test_ceil_counts(self, small_config):
        tiling = tile_gemm(9, 33, 33, small_config)
        assert tiling.row_passes == 2
        assert tiling.k_tiles == 2
        assert tiling.col_groups == 2

    def test_utilization_reflects_padding(self, small_config):
        tiling = tile_gemm(8, 48, 32, small_config)  # k pads 48 -> 64
        assert tiling.utilization(small_config) == pytest.approx(48 / 64)

    def test_rejects_bad_dims(self, small_config):
        with pytest.raises(ValueError):
            tile_gemm(0, 8, 8, small_config)

    @given(st.integers(1, 300), st.integers(1, 300), st.integers(1, 300))
    @settings(max_examples=50, deadline=None)
    def test_utilization_in_unit_interval(self, rows, k, n_out):
        config = AcceleratorConfig(name="p", n=8, m=4, w=4, frequency_hz=1e9)
        util = tiling_utilization(rows, k, n_out, config)
        assert 0.0 < util <= 1.0

    @given(st.integers(1, 200), st.integers(1, 200), st.integers(1, 200))
    @settings(max_examples=50, deadline=None)
    def test_capacity_covers_real_macs(self, rows, k, n_out):
        config = AcceleratorConfig(name="p", n=4, m=2, w=2, frequency_hz=1e9)
        tiling = tile_gemm(rows, k, n_out, config)
        assert tiling.capacity_macs(config) >= tiling.real_macs


class TestInferenceCompilation:
    def test_step_count_matches_dependency_chain(self, small_config, tiny_model):
        program = compile_inference(tiny_model, small_config)
        assert program.step_count == tiny_model.step_count

    def test_batch_defaults_to_n_for_vector_models(self, small_config, tiny_model):
        program = compile_inference(tiny_model, small_config)
        assert program.rows == small_config.n

    def test_inference_jobs_have_no_weight_stream(self, small_config, tiny_model):
        program = compile_inference(tiny_model, small_config)
        assert program.total_weight_bytes == 0.0

    def test_occupancy_matches_closed_form(self, small_config):
        lstm = deepbench_lstm(hidden=256, steps=4)
        program = compile_inference(lstm, small_config)
        k_tiles = math.ceil(256 / small_config.tile_k)
        col_groups = math.ceil(1024 / small_config.column_group)
        expected = 4 * k_tiles * col_groups * small_config.n
        assert program.total_mmu_cycles == pytest.approx(expected)

    def test_chunking_preserves_totals(self, small_config):
        lstm = deepbench_lstm(hidden=512, steps=2)
        fine = TileCompiler(small_config, chunk_us=0.05).compile_inference(lstm)
        coarse = TileCompiler(small_config, chunk_us=100.0).compile_inference(lstm)
        assert fine.total_mmu_cycles == pytest.approx(coarse.total_mmu_cycles)
        assert fine.total_useful_ops == pytest.approx(coarse.total_useful_ops)
        assert sum(len(s.mmu_jobs) for s in fine.steps) > sum(
            len(s.mmu_jobs) for s in coarse.steps
        )

    def test_useful_ops_match_model(self, small_config, tiny_model):
        program = compile_inference(tiny_model, small_config)
        expected = program.rows * 2.0 * tiny_model.macs_per_sample
        assert program.total_useful_ops == pytest.approx(expected)

    def test_rejects_bad_batch(self, small_config, tiny_model):
        with pytest.raises(ValueError):
            compile_inference(tiny_model, small_config, batch=-1)


class TestTrainingCompilation:
    def test_three_passes_plus_sync(self, small_config, tiny_model):
        program = compile_training(tiny_model, small_config, batch=16)
        labels = [step.label for step in program.steps]
        assert sum(1 for l in labels if l.startswith("fwd:")) == 2
        assert sum(1 for l in labels if l.startswith("dgrad:")) == 2
        assert sum(1 for l in labels if l.startswith("wgrad:")) == 1
        assert labels[-1] == "param_sync"

    def test_training_ops_about_three_times_inference(self, small_config, tiny_model):
        train = compile_training(tiny_model, small_config, batch=16)
        inference_macs = 16 * tiny_model.macs_per_sample
        assert train.total_useful_ops == pytest.approx(
            3 * 2 * inference_macs, rel=0.01
        )

    def test_weights_streamed_per_step(self, small_config, tiny_model):
        program = compile_training(
            tiny_model, small_config, batch=16, master_bytes=2.0
        )
        layer = tiny_model.layers[0]
        # fwd + dgrad each stream the master weights every repeat.
        expected = 2 * layer.repeats * layer.weight_count * 2.0
        assert program.total_weight_bytes == pytest.approx(expected)

    def test_wgrad_concatenates_sequence(self, small_config, tiny_model):
        program = compile_training(tiny_model, small_config, batch=16)
        wgrad = next(s for s in program.steps if s.label.startswith("wgrad"))
        layer = tiny_model.layers[0]
        # K = batch·repeats: the sequence-batched reduction.
        expected_macs = layer.k * (16 * layer.repeats) * layer.n_out
        assert wgrad.useful_macs == pytest.approx(expected_macs)

    def test_param_sync_bytes(self, small_config, tiny_model):
        program = compile_training(
            tiny_model, small_config, batch=16, master_bytes=2.0
        )
        sync = program.steps[-1]
        assert sync.dram_bytes == pytest.approx(
            2 * tiny_model.weight_count * 2.0
        )

    def test_stream_cap_shrinks_jobs(self, small_config, tiny_model):
        free = compile_training(tiny_model, small_config, batch=16)
        capped = TileCompiler(small_config).compile_training(
            tiny_model, batch=16, max_stream_bytes=64.0
        )
        assert sum(len(s.mmu_jobs) for s in capped.steps) >= sum(
            len(s.mmu_jobs) for s in free.steps
        )
        assert capped.total_mmu_cycles == pytest.approx(free.total_mmu_cycles)

    def test_mlp_training_reverses_layers(self, small_config, tiny_mlp_model):
        program = compile_training(tiny_mlp_model, small_config, batch=8)
        labels = [s.label for s in program.steps if s.label.startswith("wgrad")]
        assert labels == ["wgrad:fc1", "wgrad:fc0"]

    def test_first_mlp_layer_skips_dgrad(self, small_config, tiny_mlp_model):
        program = compile_training(tiny_mlp_model, small_config, batch=8)
        dgrads = [s.label for s in program.steps if s.label.startswith("dgrad")]
        assert dgrads == ["dgrad:fc1[0]"]
