"""Functional model execution under the quantized datapaths."""

import numpy as np
import pytest

from repro.models.functional import (
    FunctionalLSTMCell,
    FunctionalMLP,
    relative_output_error,
)


class TestFunctionalLSTM:
    def _pair(self, encoding, hidden=64, seed=0):
        return (
            FunctionalLSTMCell(hidden, "fp32", np.random.default_rng(seed)),
            FunctionalLSTMCell(hidden, encoding, np.random.default_rng(seed)),
        )

    def test_state_shapes(self):
        cell = FunctionalLSTMCell(32)
        state = cell.initial_state(batch=4)
        out = cell.step(state)
        assert out.h.shape == (4, 32)
        assert out.c.shape == (4, 32)

    def test_states_stay_bounded(self):
        """Gate saturation keeps h in (-1, 1) over long sequences."""
        cell = FunctionalLSTMCell(32, "hbfp8")
        h = cell.run(np.random.default_rng(1).standard_normal((4, 32)), steps=50)
        assert np.abs(h).max() <= 1.0

    def test_hbfp8_tracks_fp32_over_sequence(self):
        """The numeric counterpart of Figure 2: 25 recurrent steps on
        the hbfp8 datapath stay close to fp32."""
        exact, quant = self._pair("hbfp8")
        x = np.random.default_rng(2).standard_normal((8, 64)).astype(np.float32)
        err = relative_output_error(exact.run(x, 25), quant.run(x, 25))
        assert err < 0.15

    def test_bfloat16_tracks_fp32(self):
        exact, quant = self._pair("bfloat16")
        x = np.random.default_rng(3).standard_normal((8, 64)).astype(np.float32)
        err = relative_output_error(exact.run(x, 25), quant.run(x, 25))
        assert err < 0.15

    def test_identical_seeds_identical_weights(self):
        a, b = self._pair("fp32")
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FunctionalLSTMCell(0)
        with pytest.raises(ValueError):
            FunctionalLSTMCell(8).run(np.zeros((1, 8)), steps=0)


class TestFunctionalMLP:
    def test_forward_shape(self):
        mlp = FunctionalMLP([16, 32, 4])
        assert mlp.run(np.zeros((5, 16))).shape == (5, 4)

    def test_hbfp8_close_to_fp32(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((16, 32)).astype(np.float32)
        exact = FunctionalMLP([32, 64, 8], "fp32", np.random.default_rng(7))
        quant = FunctionalMLP([32, 64, 8], "hbfp8", np.random.default_rng(7))
        assert relative_output_error(exact.run(x), quant.run(x)) < 0.1

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            FunctionalMLP([16])


class TestRelativeError:
    def test_zero_for_identical(self):
        x = np.ones((3, 3))
        assert relative_output_error(x, x) == 0.0

    def test_normalized_by_reference_scale(self):
        ref = np.full((2, 2), 10.0)
        assert relative_output_error(ref, ref + 1.0) == pytest.approx(0.1)

    def test_zero_reference(self):
        assert relative_output_error(np.zeros((2, 2)), np.ones((2, 2))) == 1.0
