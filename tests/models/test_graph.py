"""Layer-graph IR."""

import pytest

from repro.models.graph import GemmLayer, ModelSpec


class TestGemmLayer:
    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            GemmLayer(name="x", k=0, n_out=4)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            GemmLayer(name="x", k=4, n_out=4, mode="diagonal")

    def test_weight_count(self):
        layer = GemmLayer(name="x", k=8, n_out=16, repeats=3)
        assert layer.weight_count == 128  # shared across repeats

    def test_macs_per_sample(self):
        layer = GemmLayer(name="x", k=8, n_out=16, rows_per_sample=2, repeats=3)
        assert layer.macs_per_sample == 2 * 8 * 16 * 3


class TestModelSpec:
    def _spec(self):
        return ModelSpec(
            name="m",
            layers=(
                GemmLayer(name="a", k=8, n_out=16, repeats=2),
                GemmLayer(name="b", k=16, n_out=4),
            ),
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ModelSpec(name="m", layers=())

    def test_totals(self):
        spec = self._spec()
        assert spec.weight_count == 8 * 16 + 16 * 4
        assert spec.macs_per_sample == 8 * 16 * 2 + 16 * 4
        assert spec.ops_per_sample == 2 * spec.macs_per_sample
        assert spec.step_count == 3

    def test_weight_bytes_scales_with_encoding(self):
        spec = self._spec()
        assert spec.weight_bytes(2.0) == 2 * spec.weight_count

    def test_recurrent_detection(self):
        assert self._spec().is_recurrent
        flat = ModelSpec(name="f", layers=(GemmLayer(name="a", k=4, n_out=4),))
        assert not flat.is_recurrent

    def test_vector_models_batch_to_n(self):
        assert self._spec().inference_batch(64) == 64

    def test_tall_models_use_conv_hint(self):
        spec = ModelSpec(
            name="cnn",
            layers=(GemmLayer(name="c", k=9, n_out=8, rows_per_sample=49,
                              mode="tall"),),
            conv_batch_hint=8,
        )
        assert spec.inference_batch(143) == 8
