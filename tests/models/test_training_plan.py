"""Training plans and the dedicated-accelerator reference."""

import pytest

from repro.models.training import DRAM_STREAM_EFFICIENCY, build_training_plan
from repro.models.lstm import deepbench_lstm


class TestTrainingPlan:
    @pytest.fixture
    def plan(self, small_config):
        return build_training_plan(
            deepbench_lstm(hidden=256, steps=4), small_config, batch=16
        )

    def test_intensity_positive(self, plan):
        assert plan.arithmetic_intensity > 0

    def test_dedicated_is_min_of_bounds(self, plan):
        dedicated = plan.dedicated_throughput_top_s()
        assert dedicated == pytest.approx(
            min(plan.compute_bound_top_s(), plan.dram_bound_top_s()), rel=1e-6
        )

    def test_compute_bound_below_peak(self, plan, small_config):
        # Tiling losses keep useful throughput under Eq. 3 peak.
        assert plan.compute_bound_top_s() <= small_config.peak_throughput_top_s

    def test_dram_bound_uses_stream_efficiency(self, plan, small_config):
        effective = (
            small_config.dram.bandwidth_bytes_per_s * DRAM_STREAM_EFFICIENCY
        )
        expected = plan.arithmetic_intensity * effective / 1e12
        assert plan.dram_bound_top_s() == pytest.approx(expected, rel=1e-6)

    def test_is_dram_bound_consistent(self, plan):
        assert plan.is_dram_bound == (
            plan.dram_cycles() >= plan.compute_cycles()
        )

    def test_paper_scale_lstm_is_dram_bound(self):
        """At the paper's scale (batch 128 vs hundreds of TOp/s of
        compute), LSTM training is bound by HBM bandwidth — the §2.2
        observation Equinox's whole premise rests on."""
        from repro.dse.table1 import equinox_configuration

        plan = build_training_plan(
            deepbench_lstm(), equinox_configuration("none"), batch=128
        )
        assert plan.is_dram_bound
        # Max training throughput lands near the paper's ~107 TOp/s.
        assert 80 <= plan.dedicated_throughput_top_s() <= 160

    def test_bigger_batch_raises_intensity(self, small_config):
        model = deepbench_lstm(hidden=256, steps=4)
        small = build_training_plan(model, small_config, batch=8)
        large = build_training_plan(model, small_config, batch=64)
        assert large.arithmetic_intensity > small.arithmetic_intensity
