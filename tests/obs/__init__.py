"""Observability layer (repro.obs)."""
