"""MetricsRegistry: instruments, deferred sources, snapshot contract."""

import json
import math

import pytest

from repro.obs.metrics import Counter, Gauge, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("requests.completed")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4.0

    def test_counter_is_monotone(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_set_and_track_max(self):
        gauge = Gauge("queue.depth")
        gauge.set(3)
        gauge.track_max(7)
        gauge.track_max(2)
        assert gauge.value == 7.0

    def test_gauge_rejects_nan(self):
        with pytest.raises(ValueError):
            Gauge("x").set(math.nan)

    def test_metric_names_are_dotted_lowercase(self):
        for bad in ("", "Request.Latency", "a..b", "a-b", "a b"):
            with pytest.raises(ValueError):
                Counter(bad)
        Counter("request.latency_us.p99")  # valid


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.gauge("c") is registry.gauge("c")
        assert registry.histogram("d") is registry.histogram("d")

    def test_kind_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError):
            registry.gauge("a.b")
        with pytest.raises(ValueError):
            registry.histogram("a.b")
        with pytest.raises(ValueError):
            registry.register_source("a.b", dict)

    def test_duplicate_source_rejected(self):
        registry = MetricsRegistry()
        registry.register_source("faults", dict)
        with pytest.raises(ValueError):
            registry.register_source("faults", dict)

    def test_sources_are_read_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"count": 1}
        registry.register_source("latency", lambda: dict(state))
        assert registry.snapshot()["sources"]["latency"] == {"count": 1.0}
        state["count"] = 5
        assert registry.snapshot()["sources"]["latency"] == {"count": 5.0}

    def test_snapshot_sections_and_ordering(self):
        registry = MetricsRegistry()
        registry.counter("z.second").inc()
        registry.counter("a.first").inc(2)
        registry.gauge("depth").set(4)
        registry.histogram("lat").observe(10.0)
        registry.register_source("src", lambda: {"b": 2, "a": 1})
        snap = registry.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms", "sources"]
        assert list(snap["counters"]) == ["a.first", "z.second"]
        assert list(snap["sources"]["src"]) == ["a", "b"]

    def test_snapshot_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("ops").inc(7)
            registry.histogram("lat").observe(3.0)
            registry.register_source("s", lambda: {"x": 1})
            return registry.snapshot()

        assert json.dumps(build(), sort_keys=True) == json.dumps(
            build(), sort_keys=True
        )

    def test_flat_view(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc(2)
        registry.gauge("depth").set(3)
        registry.register_source("src", lambda: {"leaf": 4})
        registry.histogram("lat").observe(1.0)
        flat = registry.flat()
        assert flat["ops"] == 2.0
        assert flat["depth"] == 3.0
        assert flat["src.leaf"] == 4.0
        assert flat["lat.count"] == 1.0


class TestLegacyCollectorSources:
    """The migration contract: the pre-existing collectors plug in as
    deferred sources with their public APIs unchanged."""

    def test_latency_stats_source(self):
        from repro.sim.stats import LatencyStats

        stats = LatencyStats()
        registry = MetricsRegistry()
        registry.register_source("inference.latency", stats.metrics)
        assert registry.snapshot()["sources"]["inference.latency"] == {
            "count": 0.0
        }
        for v in range(1, 101):
            stats.record(float(v))
        view = registry.snapshot()["sources"]["inference.latency"]
        assert view["count"] == 100.0
        assert view["p99"] == pytest.approx(99.01)

    def test_fault_counters_source(self):
        from repro.faults.counters import FaultCounters

        counters = FaultCounters()
        counters.hbm_retries += 1
        registry = MetricsRegistry()
        registry.register_source("faults", counters.as_dict)
        assert (
            registry.snapshot()["sources"]["faults"]["hbm_retries"] == 1.0
        )

    def test_cycle_accounting_source(self):
        from repro.sim.stats import CycleAccounting

        accounting = CycleAccounting()
        accounting.add("working", 30.0)
        accounting.add("dummy", 10.0)
        registry = MetricsRegistry()
        registry.register_source("mmu.cycles", accounting.metrics)
        view = registry.snapshot()["sources"]["mmu.cycles"]
        assert view["working"] == 30.0
        assert view["busy_total"] == 40.0
