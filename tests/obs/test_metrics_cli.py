"""``python -m repro metrics``: smoke, validate, diff."""

import json

import pytest

from repro.__main__ import main


@pytest.fixture(scope="module")
def smoke_artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("metrics") / "smoke.json"
    assert main(["metrics", "smoke", "--out", str(path)]) == 0
    return path


class TestSmoke:
    def test_artifact_written_and_valid(self, smoke_artifact, capsys):
        assert main(["metrics", "validate", str(smoke_artifact)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_artifact_shape(self, smoke_artifact):
        data = json.loads(smoke_artifact.read_text())
        assert data["name"] == "smoke"
        assert data["kind"] == "accelerator"
        assert data["latency_us"]["p99"] is not None
        assert data["throughput_top_s"]["training"] > 0
        assert data["profile"]["events"] > 0

    def test_repeat_run_is_byte_identical(self, smoke_artifact, tmp_path):
        second = tmp_path / "smoke2.json"
        assert main(["metrics", "smoke", "--out", str(second)]) == 0
        assert second.read_text() == smoke_artifact.read_text()


class TestValidate:
    def test_broken_artifact_fails(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"name": "x"}))
        assert main(["metrics", "validate", str(path)]) == 1
        assert "schema" in capsys.readouterr().err

    def test_nan_latency_fails(self, smoke_artifact, tmp_path, capsys):
        data = json.loads(smoke_artifact.read_text())
        data["latency_us"]["p99"] = "nan"
        path = tmp_path / "nan.json"
        path.write_text(json.dumps(data))
        assert main(["metrics", "validate", str(path)]) == 1
        assert "nan" in capsys.readouterr().err

    def test_unreadable_path_fails(self, tmp_path):
        assert main(["metrics", "validate", str(tmp_path / "no.json")]) == 1

    def test_no_paths_is_a_usage_error(self):
        assert main(["metrics", "validate"]) == 2


class TestDiff:
    def test_identical_artifacts(self, smoke_artifact, capsys):
        code = main([
            "metrics", "diff", str(smoke_artifact), str(smoke_artifact),
        ])
        assert code == 0
        assert "identical" in capsys.readouterr().out

    def test_differing_artifacts_exit_nonzero(
        self, smoke_artifact, tmp_path, capsys
    ):
        data = json.loads(smoke_artifact.read_text())
        data["latency_us"]["p99"] = 123456.0
        other = tmp_path / "other.json"
        other.write_text(json.dumps(data))
        code = main(["metrics", "diff", str(smoke_artifact), str(other)])
        assert code == 1
        assert "latency_us.p99" in capsys.readouterr().out

    def test_wrong_arity_is_a_usage_error(self, smoke_artifact):
        assert main(["metrics", "diff", str(smoke_artifact)]) == 2


class TestUnknownTarget:
    def test_unknown_experiment_name(self, capsys):
        assert main(["metrics", "nosuch"]) == 2
        assert "unknown metrics target" in capsys.readouterr().err
