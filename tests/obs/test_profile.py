"""SimProfiler: hot-path hooks, determinism split, injectable clock."""

import pytest

from repro.obs.profile import SimProfiler
from repro.sim.engine import Event


class _FakeClock:
    """Deterministic wall clock advancing a fixed step per read."""

    def __init__(self, step: float = 0.5):
        self.step = step
        self.reads = 0

    def __call__(self) -> float:
        self.reads += 1
        return self.reads * self.step


def _event(callback, time=0.0, seq=0):
    return Event(time, seq, callback)


def _named_callback():
    pass


class TestHooks:
    def test_counts_events_and_heap_high_water(self):
        profiler = SimProfiler(clock=_FakeClock())
        for depth in (3, 9, 1):
            event = _event(_named_callback)
            profiler.before_event(event, depth)
            profiler.after_event(event)
        assert profiler.events == 3
        assert profiler.max_heap_depth == 9

    def test_component_attribution_by_qualname(self):
        profiler = SimProfiler(clock=_FakeClock())
        event = _event(_named_callback)
        profiler.before_event(event, 0)
        profiler.after_event(event)
        counts = profiler.component_events()
        assert len(counts) == 1
        (name,) = counts
        assert name.endswith("_named_callback")
        assert counts[name] == 1.0

    def test_wall_time_from_injected_clock(self):
        profiler = SimProfiler(clock=_FakeClock(step=0.5))
        event = _event(_named_callback)
        profiler.before_event(event, 0)
        profiler.after_event(event)
        # One before/after pair = two reads 0.5s apart.
        assert profiler.wall_seconds == pytest.approx(0.5)
        assert profiler.events_per_second() == pytest.approx(2.0)

    def test_unmatched_after_is_ignored(self):
        profiler = SimProfiler(clock=_FakeClock())
        profiler.after_event(_event(_named_callback))
        assert profiler.wall_seconds == 0.0


class TestExportSplit:
    def test_deterministic_metrics_exclude_wall_clock(self):
        profiler = SimProfiler(clock=_FakeClock())
        event = _event(_named_callback)
        profiler.before_event(event, 4)
        profiler.after_event(event)
        assert profiler.deterministic_metrics() == {
            "events": 1.0,
            "max_heap_depth": 4.0,
        }

    def test_wall_summary_carries_the_clock_data(self):
        profiler = SimProfiler(clock=_FakeClock(step=1.0))
        event = _event(_named_callback)
        profiler.before_event(event, 0)
        profiler.after_event(event)
        summary = profiler.wall_summary()
        assert summary["wall_seconds"] == pytest.approx(1.0)
        assert any(key.startswith("callback_seconds.") for key in summary)


class TestEngineIntegration:
    def test_profiler_sees_every_executed_event(self, sim):
        profiler = SimProfiler(clock=_FakeClock())
        sim.set_profiler(profiler)
        for t in range(5):
            sim.at(t, _named_callback)
        sim.run()
        assert profiler.events == sim.events_processed == 5

    def test_detach_stops_observation(self, sim):
        profiler = SimProfiler(clock=_FakeClock())
        sim.set_profiler(profiler)
        sim.at(1, _named_callback)
        sim.run()
        sim.set_profiler(None)
        sim.at(2, _named_callback)
        sim.run()
        assert profiler.events == 1
        assert sim.events_processed == 2
