"""RunReport: schema validation, canonical JSON, diffing, determinism.

The determinism class is the ISSUE's acceptance check: two identically
seeded accelerator runs must serialize to byte-identical artifacts.
"""

import json
import math

import pytest

from repro.obs.report import (
    SCHEMA_ID,
    RunReport,
    diff_reports,
    report_from_simulation,
    validate_report,
)


def _report(**overrides):
    fields = dict(
        name="unit",
        kind="accelerator",
        latency_us={"p50": 10.0, "p99": 42.0, "mean": 12.0, "max": 50.0},
        throughput_top_s={"inference": 1.5, "training": 0.5},
        cycle_breakdown={
            "working": 0.5, "dummy": 0.1, "idle": 0.3, "other": 0.1
        },
        faults={"hbm_errors": 2.0},
    )
    fields.update(overrides)
    return RunReport(**fields)


class TestSerialization:
    def test_round_trip(self):
        report = _report(metrics={"counters": {"ops": 3.0}})
        assert RunReport.from_json(report.to_json()) == report

    def test_canonical_json_sorted_and_nan_free(self):
        text = _report().to_json()
        data = json.loads(text)
        assert list(data) == sorted(data)
        # Canonical dumps never emit bare NaN/Infinity literals.
        assert "NaN" not in text and "Infinity" not in text

    def test_inf_round_trips_as_sentinel_string(self):
        report = _report(latency_us={"p99": math.inf})
        data = json.loads(report.to_json())
        assert data["latency_us"]["p99"] == "inf"
        assert RunReport.from_json(report.to_json()).latency_us["p99"] == (
            math.inf
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            _report(kind="mystery")

    def test_from_dict_rejects_structural_breakage(self):
        data = json.loads(_report().to_json())
        data["schema"] = "something/else"
        with pytest.raises(ValueError):
            RunReport.from_dict(data)


class TestValidation:
    def test_valid_report_has_no_problems(self):
        assert validate_report(json.loads(_report().to_json())) == []

    def test_nan_latency_flagged_with_prefix(self):
        data = json.loads(_report().to_json())
        data["latency_us"]["p99"] = "nan"
        problems = validate_report(data)
        assert problems and all(p.startswith("nan:") for p in problems)

    def test_null_latency_means_unmeasured_and_is_legal(self):
        data = json.loads(_report().to_json())
        data["latency_us"]["p50"] = None
        assert validate_report(data) == []

    def test_inf_latency_is_legal(self):
        data = json.loads(_report(latency_us={"p99": math.inf}).to_json())
        assert validate_report(data) == []

    def test_unknown_cycle_category_rejected(self):
        data = json.loads(_report().to_json())
        data["cycle_breakdown"]["waiting"] = 0.1
        assert any("waiting" in p for p in validate_report(data))

    def test_breakdown_fraction_out_of_range(self):
        data = json.loads(_report().to_json())
        data["cycle_breakdown"]["working"] = 1.5
        assert any("outside [0, 1]" in p for p in validate_report(data))

    def test_negative_fault_counter_rejected(self):
        data = json.loads(_report().to_json())
        data["faults"]["hbm_errors"] = -1
        assert any("faults.hbm_errors" in p for p in validate_report(data))

    def test_missing_schema_and_kind(self):
        problems = validate_report({"name": "x"})
        assert any("schema" in p for p in problems)
        assert any("kind" in p for p in problems)


class TestDiff:
    def test_identical_reports_diff_empty(self):
        assert diff_reports(_report(), _report()) == {}

    def test_changed_field_reported_with_both_values(self):
        changed = _report(
            latency_us={"p50": 10.0, "p99": 99.0, "mean": 12.0, "max": 50.0}
        )
        delta = diff_reports(_report(), changed)
        assert delta == {"latency_us.p99": (42.0, 99.0)}

    def test_missing_field_shows_none(self):
        smaller = _report(faults={})
        delta = diff_reports(_report(), smaller)
        assert delta == {"faults.hbm_errors": (2.0, None)}

    def test_relative_tolerance(self):
        close = _report(
            latency_us={"p50": 10.0, "p99": 42.1, "mean": 12.0, "max": 50.0}
        )
        assert diff_reports(_report(), close, rel_tolerance=0.01) == {}
        assert diff_reports(_report(), close) != {}


class _StubSimReport:
    """SimulationReport-shaped object for the duck-typed builder."""

    def __init__(self, p99=42.0, p50=10.0):
        from repro.faults.counters import FaultCounters

        self.config_name = "stub"
        self.load = 0.5
        self.duration_cycles = 1000.0
        self.frequency_hz = 1e9
        self.p50_latency_us = p50
        self.p99_latency_us = p99
        self.mean_latency_us = 12.0
        self.max_latency_us = 50.0
        self.inference_top_s = 1.5
        self.training_top_s = 0.5
        self.cycle_breakdown = {
            "working": 0.5, "dummy": 0.1, "idle": 0.3, "other": 0.1
        }
        self.faults = FaultCounters()


class TestBuilder:
    def test_builds_valid_artifact(self):
        report = report_from_simulation("run", _StubSimReport())
        assert report.schema == SCHEMA_ID
        assert validate_report(json.loads(report.to_json())) == []
        assert report.latency_us["p99"] == 42.0
        assert report.config["load"] == 0.5

    def test_nan_latency_becomes_null(self):
        """The no-traffic sentinel maps to JSON null (unmeasured), so
        the artifact stays schema-valid."""
        stub = _StubSimReport(p99=math.nan, p50=math.nan)
        stub.mean_latency_us = math.nan
        stub.max_latency_us = math.nan
        report = report_from_simulation("run", stub)
        assert report.latency_us == {
            "p50": None, "p99": None, "mean": None, "max": None
        }
        assert validate_report(json.loads(report.to_json())) == []

    def test_inf_latency_preserved(self):
        report = report_from_simulation("run", _StubSimReport(p99=math.inf))
        assert report.latency_us["p99"] == math.inf


def _accelerator_report(seed):
    from repro.core.equinox import EquinoxAccelerator
    from repro.dse.table1 import equinox_configuration
    from repro.models.lstm import deepbench_lstm
    from repro.obs.profile import SimProfiler

    model = deepbench_lstm()
    accelerator = EquinoxAccelerator(
        equinox_configuration("500us"),
        model,
        training_model=model,
        profiler=SimProfiler(),
    )
    sim_report = accelerator.run(load=0.5, requests=64, seed=seed)
    return accelerator.run_report(sim_report, "determinism")


class TestDeterminism:
    def test_same_seed_runs_are_byte_identical(self):
        assert _accelerator_report(3).to_json() == (
            _accelerator_report(3).to_json()
        )

    def test_different_seeds_actually_differ(self):
        assert _accelerator_report(3).to_json() != (
            _accelerator_report(11).to_json()
        )

    def test_full_artifact_is_schema_valid(self):
        report = _accelerator_report(3)
        assert validate_report(json.loads(report.to_json())) == []
        # The headline quantities the ISSUE requires of every artifact.
        assert report.latency_us["p50"] is not None
        assert report.latency_us["p99"] is not None
        assert set(report.throughput_top_s) == {"inference", "training"}
        assert set(report.cycle_breakdown) == {
            "working", "dummy", "idle", "other"
        }
        assert report.profile["events"] > 0
        assert "request" in report.spans
        assert "train.step" in report.spans
