"""QuantileSketch: accuracy guarantees, merging, sentinel handling."""

import json
import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.obs.sketch import QuantileSketch


def _exact_nearest_rank(values, q):
    """The order statistic the sketch's rank convention targets."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _lognormal_samples(n=20_000, seed=7):
    rng = np.random.RandomState(seed)
    # Latency-shaped: long right tail spanning several decades.
    return np.exp(rng.normal(loc=3.0, scale=1.2, size=n)).tolist()


class TestAccuracy:
    @pytest.mark.parametrize("q", [50.0, 90.0, 99.0, 99.9])
    def test_within_relative_accuracy_of_exact_rank(self, q):
        accuracy = 0.01
        sketch = QuantileSketch(relative_accuracy=accuracy)
        values = _lognormal_samples()
        sketch.observe_many(values)
        exact = _exact_nearest_rank(values, q)
        estimate = sketch.quantile(q)
        assert abs(estimate - exact) <= accuracy * exact

    @pytest.mark.parametrize("q", [50.0, 99.0, 99.9])
    def test_close_to_numpy_percentile(self, q):
        """np.percentile interpolates while the sketch is nearest-rank,
        so the comparison is loose — but on 20k samples the two
        conventions sit well within a few relative-accuracy widths."""
        accuracy = 0.005
        sketch = QuantileSketch(relative_accuracy=accuracy)
        values = _lognormal_samples()
        sketch.observe_many(values)
        reference = float(np.percentile(values, q))
        assert abs(sketch.quantile(q) - reference) <= 5 * accuracy * reference

    def test_exact_summary_statistics(self):
        sketch = QuantileSketch()
        values = [1.0, 2.0, 3.5, 10.0]
        sketch.observe_many(values)
        assert sketch.count == 4
        assert sketch.min == 1.0
        assert sketch.max == 10.0
        assert sketch.sum == pytest.approx(sum(values))
        assert sketch.mean() == pytest.approx(sum(values) / 4)

    @given(st.lists(st.floats(1e-3, 1e9), min_size=1, max_size=300))
    def test_quantiles_bounded_by_extremes(self, values):
        sketch = QuantileSketch(relative_accuracy=0.01)
        sketch.observe_many(values)
        low, high = min(values), max(values)
        for q in (0.0, 50.0, 99.0, 100.0):
            assert 0.99 * low <= sketch.quantile(q) <= 1.01 * high

    @given(st.lists(st.floats(1e-3, 1e6), min_size=2, max_size=200))
    def test_quantiles_monotone_in_q(self, values):
        sketch = QuantileSketch()
        sketch.observe_many(values)
        assert (
            sketch.quantile(50) <= sketch.quantile(90) <= sketch.quantile(99)
        )


class TestSentinels:
    def test_inf_lands_in_the_tail(self):
        sketch = QuantileSketch()
        sketch.observe_many([1.0] * 98 + [math.inf, math.inf])
        assert sketch.quantile(50) == pytest.approx(1.0, rel=0.01)
        assert sketch.quantile(99.9) == math.inf
        assert sketch.inf_count == 2
        assert sketch.max == math.inf

    def test_zero_has_its_own_bucket(self):
        sketch = QuantileSketch()
        sketch.observe_many([0.0, 0.0, 0.0, 5.0])
        assert sketch.quantile(50) == 0.0
        assert sketch.quantile(100) == pytest.approx(5.0, rel=0.01)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            QuantileSketch().observe(math.nan)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            QuantileSketch().observe(-1.0)

    def test_empty_sketch_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch().quantile(50)


class TestBoundedMemory:
    def test_bucket_cap_holds(self):
        sketch = QuantileSketch(relative_accuracy=0.001, max_buckets=32)
        sketch.observe_many(_lognormal_samples(n=5000))
        assert len(sketch._buckets) <= 32

    def test_collapse_only_degrades_the_low_end(self):
        """Collapsing folds the smallest buckets upward: the p99 of a
        wide distribution survives a tiny bucket budget."""
        tight = QuantileSketch(relative_accuracy=0.01)
        capped = QuantileSketch(relative_accuracy=0.01, max_buckets=64)
        values = _lognormal_samples(n=10_000)
        tight.observe_many(values)
        capped.observe_many(values)
        assert capped.quantile(99) == pytest.approx(
            tight.quantile(99), rel=0.02
        )


class TestMerge:
    def test_merge_equals_union(self):
        left, right, union = (
            QuantileSketch(), QuantileSketch(), QuantileSketch()
        )
        a = _lognormal_samples(n=3000, seed=1)
        b = _lognormal_samples(n=3000, seed=2)
        left.observe_many(a)
        right.observe_many(b)
        union.observe_many(a + b)
        left.merge(right)
        assert left.count == union.count
        # Bucket counts are integers, so quantiles match exactly; the
        # running sum only differs by float addition order.
        for q in (50.0, 99.0, 99.9):
            assert left.quantile(q) == union.quantile(q)
        assert left.min == union.min and left.max == union.max
        assert left.sum == pytest.approx(union.sum)

    def test_merge_rejects_accuracy_mismatch(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.01).merge(
                QuantileSketch(relative_accuracy=0.02)
            )


class TestExport:
    def test_to_dict_is_deterministic(self):
        def build():
            sketch = QuantileSketch()
            sketch.observe_many(_lognormal_samples(n=2000))
            sketch.observe(math.inf)
            return sketch.to_dict()

        assert json.dumps(build(), sort_keys=True) == json.dumps(
            build(), sort_keys=True
        )

    def test_empty_to_dict(self):
        assert QuantileSketch().to_dict() == {"count": 0.0}
