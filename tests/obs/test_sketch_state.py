"""QuantileSketch lossless state round-trip and state merging."""

import numpy as np
import pytest

from repro.obs.sketch import QuantileSketch


def _filled(seed=0, count=500):
    rng = np.random.default_rng(seed)
    sketch = QuantileSketch()
    for value in rng.lognormal(3.0, 1.0, size=count):
        sketch.observe(float(value))
    sketch.observe(float("inf"))
    return sketch


class TestStateRoundTrip:
    def test_round_trip_preserves_summary(self):
        sketch = _filled()
        clone = QuantileSketch.from_state(sketch.to_state())
        assert clone.to_dict() == sketch.to_dict()

    def test_round_trip_is_jsonable(self):
        """State must survive the exec-engine canonical round trip —
        that is how worker captures cross the process boundary."""
        from repro.exec.canonical import decode, encode

        sketch = _filled()
        restored = QuantileSketch.from_state(decode(encode(sketch.to_state())))
        assert restored.to_dict() == sketch.to_dict()

    def test_empty_sketch_round_trips(self):
        clone = QuantileSketch.from_state(QuantileSketch().to_state())
        assert clone.count == 0


class TestMergeState:
    def test_merge_state_equals_merge(self):
        a1, b1 = _filled(1), _filled(2)
        a2, b2 = _filled(1), _filled(2)
        a1.merge(b1)
        a2.merge_state(b2.to_state())
        assert a1.to_dict() == a2.to_dict()

    def test_merged_equals_union_observation(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(10.0, size=400)
        whole = QuantileSketch()
        left, right = QuantileSketch(), QuantileSketch()
        for i, value in enumerate(values):
            whole.observe(float(value))
            (left if i % 2 == 0 else right).observe(float(value))
        left.merge_state(right.to_state())
        merged, direct = left.to_dict(), whole.to_dict()
        assert merged["count"] == direct["count"]
        for quantile in ("p50", "p99"):
            assert merged[quantile] == pytest.approx(
                direct[quantile], rel=0.02
            )
