"""SpanTracer: live and retroactive spans, aggregation, hierarchy."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.sim.trace import Tracer


class TestLiveSpans:
    def test_begin_end_measures_simulated_time(self, sim):
        tracer = SpanTracer(sim)
        holder = {}
        sim.at(5, lambda: holder.setdefault("span", tracer.begin("request")))
        sim.at(12, lambda: tracer.end(holder["span"]))
        sim.run()
        summary = tracer.summary()
        assert summary["request"] == {
            "count": 1.0,
            "total_cycles": 7.0,
            "mean_cycles": 7.0,
            "max_cycles": 7.0,
        }

    def test_open_spans_tracked_until_ended(self, sim):
        tracer = SpanTracer(sim)
        span = tracer.begin("request")
        assert tracer.open_spans == 1
        tracer.end(span)
        assert tracer.open_spans == 0

    def test_double_end_raises(self, sim):
        tracer = SpanTracer(sim)
        span = tracer.begin("request")
        tracer.end(span)
        with pytest.raises(ValueError):
            tracer.end(span)

    def test_duration_requires_an_end(self, sim):
        span = SpanTracer(sim).begin("request")
        with pytest.raises(ValueError):
            _ = span.duration_cycles

    def test_parent_linkage(self, sim):
        tracer = SpanTracer(sim)
        parent = tracer.begin("request")
        child = tracer.begin("request.queue", parent=parent)
        assert child.parent_id == parent.span_id


class TestRetroactiveSpans:
    def test_record_with_stamped_endpoints(self, sim):
        tracer = SpanTracer(sim)
        tracer.record("request.execute", 10.0, 25.0)
        tracer.record("request.execute", 30.0, 35.0)
        summary = tracer.summary()["request.execute"]
        assert summary["count"] == 2.0
        assert summary["total_cycles"] == 20.0
        assert summary["max_cycles"] == 15.0

    def test_record_rejects_negative_duration(self, sim):
        with pytest.raises(ValueError):
            SpanTracer(sim).record("bad", 10.0, 5.0)


class TestAggregation:
    def test_summary_names_sorted(self, sim):
        tracer = SpanTracer(sim)
        tracer.record("train.step", 0.0, 1.0)
        tracer.record("request", 0.0, 1.0)
        assert list(tracer.summary()) == ["request", "train.step"]

    def test_durations_feed_registry_histograms(self, sim):
        registry = MetricsRegistry()
        tracer = SpanTracer(sim, registry=registry)
        tracer.record("request.queue", 0.0, 4.0)
        tracer.record("request.queue", 0.0, 8.0)
        histogram = registry.histogram("span.request.queue.cycles")
        assert histogram.count == 2
        assert histogram.quantile(100) == pytest.approx(8.0, rel=0.02)

    def test_records_off_by_default(self, sim):
        tracer = SpanTracer(sim)
        tracer.record("request", 0.0, 1.0)
        assert tracer.tracer.records == []

    def test_keep_records_emits_trace_records(self, sim):
        storage = Tracer(enabled=True)
        tracer = SpanTracer(sim, tracer=storage, keep_records=True)
        parent = tracer.begin("request")
        sim.now = 3.0
        tracer.end(parent, batch=2)
        records = storage.filter(component="span")
        assert len(records) == 1
        assert records[0].component == "span"
        assert records[0].payload["end_cycle"] == 3.0
        assert records[0].payload["batch"] == 2
