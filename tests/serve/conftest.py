"""Shared serving fixtures: one small calibrated matrix run."""

import pytest

from repro.serve import scenarios

#: Small but real: fleet 2 gets a chip-kill plan (KILL_STRIDE hits
#: chip 1), every class completes requests, and the run stays fast.
SMALL_SIZES = (1, 2)
SMALL_REQUESTS = 40
SMALL_SEED = 3


@pytest.fixture(scope="session")
def small_report():
    return scenarios.run(
        fleet_sizes=SMALL_SIZES,
        requests_per_chip=SMALL_REQUESTS,
        seed=SMALL_SEED,
    )
