"""SLO service classes, the registry, and tenant specs."""

import pytest

from repro.serve.classes import (
    BATCH_TRAINING,
    BEST_EFFORT,
    CONTEXT_INFERENCE,
    CONTEXT_TRAINING,
    LATENCY_CRITICAL,
    ServiceClass,
    TenantSpec,
    register_service_class,
    registered_service_classes,
    service_class,
)
from repro.workload.metrics import SLO_MULTIPLE


class TestServiceClass:
    def test_slo_cycles_scales_with_service_time(self):
        cls = ServiceClass(name="x", slo_multiple=10.0)
        assert cls.slo_cycles(1000.0) == 10000.0
        assert cls.slo_cycles(250.0) == 2500.0

    def test_share_calibrates_to_the_chip(self):
        cls = ServiceClass(
            name="x", weight=4.0, queue_depth_batches=2.5,
            deadline_multiple=3.0,
        )
        share = cls.share("tenant-a", batch_slots=8, batch_service_cycles=1000.0)
        assert share.name == "tenant-a"
        assert share.weight == 4.0
        assert share.max_queue_requests == 20  # ceil(2.5 * 8)
        assert share.deadline_cycles == 3000.0

    def test_share_without_deadline(self):
        cls = ServiceClass(name="x", deadline_multiple=None)
        share = cls.share("t", batch_slots=4, batch_service_cycles=500.0)
        assert share.deadline_cycles is None

    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            ServiceClass(name="")
        with pytest.raises(ValueError):
            ServiceClass(name="x", context="gpu")
        with pytest.raises(ValueError):
            ServiceClass(name="x", slo_multiple=0.0)
        with pytest.raises(ValueError):
            ServiceClass(name="x", weight=-1.0)
        with pytest.raises(ValueError):
            ServiceClass(name="x", queue_depth_batches=0.0)
        with pytest.raises(ValueError):
            ServiceClass(name="x", deadline_multiple=0.0)

    def test_dict_round_trip(self):
        restored = ServiceClass.from_dict(LATENCY_CRITICAL.to_dict())
        assert restored == LATENCY_CRITICAL


class TestBuiltinTiers:
    def test_registry_holds_the_three_tiers(self):
        registry = registered_service_classes()
        for cls in (LATENCY_CRITICAL, BEST_EFFORT, BATCH_TRAINING):
            assert registry[cls.name] == cls
            assert service_class(cls.name) == cls

    def test_latency_critical_is_the_paper_slo(self):
        assert LATENCY_CRITICAL.slo_multiple == SLO_MULTIPLE
        assert LATENCY_CRITICAL.context == CONTEXT_INFERENCE

    def test_only_training_uses_the_training_context(self):
        assert BATCH_TRAINING.context == CONTEXT_TRAINING
        assert BEST_EFFORT.context == CONTEXT_INFERENCE

    def test_weights_order_the_tiers(self):
        assert (
            LATENCY_CRITICAL.weight > BEST_EFFORT.weight > BATCH_TRAINING.weight
        )

    def test_unknown_class_raises(self):
        with pytest.raises(ValueError, match="unknown service class"):
            service_class("platinum")

    def test_register_guards_rebinds(self):
        custom = ServiceClass(name="test-classes-custom-tier", weight=3.0)
        register_service_class(custom)
        assert service_class(custom.name) == custom
        with pytest.raises(ValueError, match="already registered"):
            register_service_class(custom)
        replacement = ServiceClass(name=custom.name, weight=5.0)
        register_service_class(replacement, replace=True)
        assert service_class(custom.name).weight == 5.0


class TestTenantSpec:
    def test_slo_property_resolves_the_class(self):
        spec = TenantSpec("alice", "latency-critical", 0.25)
        assert spec.slo == LATENCY_CRITICAL

    def test_validates_eagerly(self):
        with pytest.raises(ValueError):
            TenantSpec("", "latency-critical", 0.25)
        with pytest.raises(ValueError):
            TenantSpec("alice", "latency-critical", 0.0)
        with pytest.raises(ValueError, match="unknown service class"):
            TenantSpec("alice", "no-such-tier", 0.25)

    def test_dict_round_trip(self):
        spec = TenantSpec("bob", "best-effort", 1.5)
        assert TenantSpec.from_dict(spec.to_dict()) == spec
