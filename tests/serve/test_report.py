"""The fleet-report artifact: schema validation and round-trips."""

import copy

import pytest

from repro.serve.report import SCHEMA_ID, FleetReport, validate_fleet_report


@pytest.fixture
def data(small_report):
    return copy.deepcopy(small_report.to_dict())


def _first_class(data):
    classes = data["curve"][0]["classes"]
    return classes[sorted(classes)[0]]


class TestValidate:
    def test_real_report_is_valid(self, data):
        assert validate_fleet_report(data) == []

    def test_schema_is_enforced(self, data):
        data["schema"] = "repro.serve/fleet-report/v0"
        assert any("schema" in p for p in validate_fleet_report(data))

    def test_missing_top_level_key(self, data):
        del data["calibration"]
        assert any("calibration" in p for p in validate_fleet_report(data))

    def test_empty_curve_rejected(self, data):
        data["curve"] = []
        assert any("non-empty" in p for p in validate_fleet_report(data))

    def test_fleet_sizes_must_increase(self, data):
        for point in data["curve"]:
            point["fleet_size"] = 2
        assert any(
            "strictly increasing" in p for p in validate_fleet_report(data)
        )

    def test_accounting_identity_enforced(self, data):
        entry = _first_class(data)
        entry["completed"] += 1
        assert any(
            "accounting identity" in p for p in validate_fleet_report(data)
        )

    def test_nan_percentile_rejected(self, data):
        entry = _first_class(data)
        entry["p99_cycles"] = float("nan")
        assert any("non-nan" in p for p in validate_fleet_report(data))

    def test_null_percentiles_allowed_without_completions(self, data):
        # A class with zero completions legitimately has no latency.
        entry = _first_class(data)
        shifted = entry["completed"]
        entry["shed"] += shifted
        entry["completed"] = 0
        entry["p50_cycles"] = None
        entry["p99_cycles"] = None
        entry["p999_cycles"] = None
        entry["slo_met"] = False
        assert validate_fleet_report(data) == []

    def test_slo_met_must_match_p99(self, data):
        entry = _first_class(data)
        entry["slo_met"] = not entry["slo_met"]
        assert any("slo_met" in p for p in validate_fleet_report(data))

    def test_negative_count_rejected(self, data):
        entry = _first_class(data)
        entry["shed"] = -1
        assert any("non-negative" in p for p in validate_fleet_report(data))

    def test_missing_reproducible_flag(self, data):
        del data["curve"][0]["reproducible"]
        assert any("reproducible" in p for p in validate_fleet_report(data))

    def test_missing_totals_keys(self, data):
        del data["curve"][0]["totals"]["chips_killed"]
        assert any("totals" in p for p in validate_fleet_report(data))


class TestRoundTrip:
    def test_from_dict_round_trips(self, small_report, data):
        restored = FleetReport.from_dict(data)
        assert restored.schema == SCHEMA_ID
        assert restored.seed == small_report.seed
        assert restored.to_json() == small_report.to_json()
        assert restored.reproducible == small_report.reproducible

    def test_from_dict_rejects_invalid(self, data):
        data["schema"] = "bogus"
        with pytest.raises(ValueError, match="invalid fleet report"):
            FleetReport.from_dict(data)
