"""Chip servers and the fleet router: pull batching, placement,
chip-kill failover, and the snapshot contract."""

import zlib

import pytest

from repro.core.dispatcher import TenantShare
from repro.faults.plan import FaultPlan, WorkerFaultSpec
from repro.serve.router import KILL_WINDOW, ChipServer, FleetRouter
from repro.sim.engine import SnapshotError

SERVICE = 1000.0


def _shares():
    return [TenantShare("a", weight=2.0), TenantShare("b", weight=1.0)]


class TestChipServer:
    def test_pull_batching_forms_only_on_free_slots(self, sim):
        chip = ChipServer(sim, 0, _shares(), SERVICE, 4, max_inflight=1)
        for _ in range(9):
            chip.dispatcher.submit("a")
        # The first arrival found an idle slot and started alone; the
        # rest stay in the bounded admission queue, not formed batches.
        assert chip.dispatcher.queue_size == 8
        assert chip.outstanding_requests == 9
        sim.run()
        assert chip.requests_served == 9
        assert chip.batches_served == 3  # 1 + 4 + 4
        assert chip.outstanding_requests == 0

    def test_max_inflight_overlaps_batches(self, sim):
        chip = ChipServer(sim, 0, _shares(), SERVICE, 1, max_inflight=2)
        for _ in range(2):
            chip.dispatcher.submit("a")
        sim.run()
        # Both single-request batches ran concurrently.
        assert chip.batches_served == 2
        assert sim.now == SERVICE

    def test_slowdown_stretches_service(self, sim):
        chip = ChipServer(sim, 0, _shares(), SERVICE, 4, slowdown=2.0)
        chip.dispatcher.submit("a")
        sim.run()
        assert sim.now == 2 * SERVICE

    def test_kill_evacuates_everything_in_request_order(self, sim):
        chip = ChipServer(sim, 0, _shares(), SERVICE, 4, max_inflight=1)
        for _ in range(6):
            chip.dispatcher.submit("a")
        evacuated = chip.kill()
        assert not chip.alive
        assert [r.request_id for r in evacuated] == list(range(6))
        # Back through admission: none of them count as batched work.
        assert all(r.batched_cycle is None for r in evacuated)
        assert chip.requests_served == 0
        assert chip.outstanding_requests == 0
        sim.run()  # cancelled service events must not fire
        assert chip.batches_served == 0

    def test_rejects_bad_parameters(self, sim):
        with pytest.raises(ValueError):
            ChipServer(sim, 0, _shares(), 0.0, 4)
        with pytest.raises(ValueError):
            ChipServer(sim, 0, _shares(), SERVICE, 4, max_inflight=0)
        with pytest.raises(ValueError):
            ChipServer(sim, 0, _shares(), SERVICE, 4, slowdown=0.5)


def _router(sim, fleet_size=4, seed=3, **kwargs):
    return FleetRouter(
        sim,
        _shares(),
        fleet_size=fleet_size,
        batch_slots=4,
        batch_service_cycles=SERVICE,
        seed=seed,
        **kwargs,
    )


class TestFleetRouter:
    def test_unknown_tenant_rejected(self, sim):
        with pytest.raises(ValueError, match="unknown tenant"):
            _router(sim).submit("nobody")

    def test_everything_submitted_completes(self, sim):
        router = _router(sim)
        for _ in range(20):
            router.submit("a")
        for _ in range(10):
            router.submit("b")
        sim.run()
        assert router.completed_by_tenant == {"a": 20, "b": 10}
        assert router.outstanding_requests == 0
        assert router.sketches["a"].count == 20
        assert router.last_completion_cycle == sim.now

    def test_placement_respects_affinity_arcs(self, sim):
        router = _router(sim, fleet_size=8)
        for _ in range(40):
            router.submit("a")
        arc_start = zlib.crc32(b"a") % 8
        arc = {(arc_start + offset) % 8 for offset in range(4)}
        for chip in router.chips:
            if chip.chip_id not in arc:
                assert chip.outstanding_requests == 0, chip.chip_id

    def test_kill_chip_fails_over_through_admission(self, sim):
        router = _router(sim, fleet_size=2)
        for _ in range(24):
            router.submit("a")
        loaded = max(
            router.chips, key=lambda chip: chip.outstanding_requests
        )
        router.kill_chip(loaded.chip_id)
        assert router.chips_killed == [loaded.chip_id]
        assert router.failover_redispatched > 0
        assert router.counters.workers_crashed == 1
        sim.run()
        # Nothing lost: the survivor absorbed the evacuated requests.
        assert sum(router.completed_by_tenant.values()) == 24
        assert router.failover_dropped == 0
        assert router.alive_chips == 1

    def test_dead_fleet_drops_failover_and_counts_unroutable(self, sim):
        router = _router(sim, fleet_size=1)
        requests = [router.submit("a") for _ in range(6)]
        router.kill_chip(0)
        # No survivor to fail over to: evacuated requests are dropped
        # (counted, marked rejected) rather than silently vanishing.
        assert router.failover_dropped_by_tenant["a"] == 6
        assert all(request.rejected for request in requests)
        assert router.submit("a") is None
        assert router.unroutable_by_tenant["a"] == 1
        assert router.submitted_by_tenant["a"] == 6  # unroutable ≠ placed

    def test_schedule_kills_follows_the_plan(self, sim):
        plan = FaultPlan(seed=11, workers=WorkerFaultSpec(crashed=(1, 99)))
        router = _router(sim, fleet_size=4, fault_plan=plan)
        horizon = 20 * SERVICE
        router.schedule_kills(horizon)
        sim.run()
        # Chip 99 is out of range and skipped; chip 1 died inside the
        # kill window, deterministically from the plan seed.
        assert router.chips_killed == [1]
        assert not router.chips[1].alive
        assert KILL_WINDOW[0] * horizon <= sim.now <= KILL_WINDOW[1] * horizon

    def test_snapshot_round_trip(self, sim):
        plan = FaultPlan(seed=11, workers=WorkerFaultSpec(crashed=(1,)))
        router = _router(sim, fleet_size=2, fault_plan=plan)
        for _ in range(12):
            router.submit("a")
        router.schedule_kills(4 * SERVICE)
        sim.run()
        router.flush()
        sim.run()
        assert router.outstanding_requests == 0
        state = router.to_state()

        restored = _router(sim, fleet_size=2, fault_plan=plan)
        restored.from_state(state)
        assert restored.to_state() == state
        assert restored.completed_by_tenant == router.completed_by_tenant
        assert restored.chips_killed == router.chips_killed
        assert restored.last_completion_cycle == router.last_completion_cycle

    def test_snapshot_refused_with_outstanding_work(self, sim):
        router = _router(sim)
        router.submit("a")
        with pytest.raises(SnapshotError, match="outstanding"):
            router.to_state()

    def test_snapshot_rejects_wrong_fleet_size(self, sim):
        router = _router(sim, fleet_size=2)
        state = router.to_state()
        other = _router(sim, fleet_size=4)
        with pytest.raises(ValueError, match="chip"):
            other.from_state(state)

    def test_rejects_empty_fleet(self, sim):
        with pytest.raises(ValueError):
            _router(sim, fleet_size=0)
