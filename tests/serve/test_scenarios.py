"""The tenant-mix scenario matrix: determinism, starvation regression,
chip-kill accounting, and the ``python -m repro serve`` CLI."""

import json

import pytest

from repro.exec import JobRunner
from repro.faults.plan import FaultPlan, WorkerFaultSpec
from repro.serve import scenarios
from repro.serve.classes import TenantSpec
from repro.serve.report import validate_fleet_report
from tests.serve.conftest import SMALL_REQUESTS, SMALL_SEED, SMALL_SIZES

SERVICE = 1000.0
SLOTS = 8


def _config(tenants, fleet_size=2, requests=200, plan=None):
    return {
        "fleet_size": fleet_size,
        "requests": requests,
        "tenants": [spec.to_dict() for spec in tenants],
        "plan": plan,
        "batch_service_cycles": SERVICE,
        "batch_slots": SLOTS,
        "frequency_hz": 1e9,
    }


def _default_mix():
    return [
        TenantSpec("interactive", "latency-critical", 0.25),
        TenantSpec("bulk", "best-effort", 1.0),
        TenantSpec("trainer", "batch-training", 0.35),
    ]


class TestDefaultTenants:
    def test_cycles_the_mix_with_suffixes(self):
        tenants = scenarios.default_tenants(5)
        assert [spec.name for spec in tenants] == [
            "interactive", "bulk", "trainer", "interactive-2", "bulk-2",
        ]
        assert tenants[3].service_class == tenants[0].service_class

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            scenarios.default_tenants(0)


class TestRunScenario:
    def test_double_run_is_reproducible(self):
        point = scenarios.run_scenario(_config(_default_mix()), seed=3)
        assert point["reproducible"] is True

    def test_accounting_identity_per_class(self):
        point = scenarios.run_scenario(_config(_default_mix()), seed=3)
        for name, entry in point["classes"].items():
            assert entry["submitted"] == (
                entry["completed"] + entry["shed"] + entry["timed_out"]
                + entry["failover_dropped"]
            ), name
        totals = point["totals"]
        assert totals["submitted"] == sum(
            entry["submitted"] for entry in point["classes"].values()
        )

    def test_starvation_regression(self):
        """A saturating best-effort flash crowd (3× one chip's capacity
        per chip) must not push the latency-critical tenant past its
        p99 SLO — the fair-share weights and per-tenant admission
        bounds contain it. This is the tentpole's isolation guarantee."""
        mix = [
            TenantSpec("interactive", "latency-critical", 0.25),
            TenantSpec("bulk", "best-effort", 3.0),
        ]
        point = scenarios.run_scenario(
            _config(mix, fleet_size=2, requests=520), seed=3
        )
        critical = point["classes"]["latency-critical"]
        effort = point["classes"]["best-effort"]
        # The flash crowd really saturated: best-effort shed load...
        assert effort["shed"] > 0
        # ...while the latency-critical tenant lost nothing and stayed
        # inside its objective.
        assert critical["shed"] == 0
        assert critical["timed_out"] == 0
        assert critical["completed"] > 0
        assert critical["slo_met"] is True
        assert critical["p99_cycles"] <= critical["slo_cycles"]

    def test_chip_kill_point_keeps_the_identity(self):
        plan = FaultPlan(
            seed=5, workers=WorkerFaultSpec(crashed=(1,))
        ).to_dict()
        point = scenarios.run_scenario(
            _config(_default_mix(), fleet_size=4, requests=400, plan=plan),
            seed=3,
        )
        assert point["totals"]["chips_killed"] == 1
        assert point["totals"]["failover_redispatched"] > 0
        assert point["reproducible"] is True
        for entry in point["classes"].values():
            assert entry["submitted"] == (
                entry["completed"] + entry["shed"] + entry["timed_out"]
                + entry["failover_dropped"]
            )


class TestMatrix:
    def test_report_is_schema_valid(self, small_report):
        assert validate_fleet_report(small_report.to_dict()) == []
        assert small_report.reproducible

    def test_matrix_rerun_is_byte_identical(self, small_report):
        again = scenarios.run(
            fleet_sizes=SMALL_SIZES,
            requests_per_chip=SMALL_REQUESTS,
            seed=SMALL_SEED,
        )
        assert again.to_json() == small_report.to_json()

    def test_parallel_fanout_is_byte_identical(self, small_report):
        fanned = scenarios.run(
            fleet_sizes=SMALL_SIZES,
            requests_per_chip=SMALL_REQUESTS,
            seed=SMALL_SEED,
            executor=JobRunner(jobs=2),
        )
        assert fanned.to_json() == small_report.to_json()

    def test_fleet_two_exercises_failover(self, small_report):
        by_size = {
            point["fleet_size"]: point for point in small_report.curve
        }
        assert by_size[1]["totals"]["chips_killed"] == 0
        assert by_size[2]["totals"]["chips_killed"] == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            scenarios.run(fleet_sizes=(2, 2))
        with pytest.raises(ValueError, match="strictly increasing"):
            scenarios.run(fleet_sizes=(4, 2))
        with pytest.raises(ValueError, match="requests_per_chip"):
            scenarios.run(fleet_sizes=(1,), requests_per_chip=0)

    def test_render_mentions_every_class(self, small_report):
        text = scenarios.render(small_report)
        for name in small_report.service_classes:
            assert name in text
        assert "determinism self-check" in text
        assert "FAIL" not in text


class TestCLI:
    def test_serve_writes_and_validates_artifact(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main([
            "serve", "--fleet", "1", "--tenants", "2",
            "--requests-per-chip", "24", "--seed", "3",
            "--report-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fleet serving matrix" in out
        artifact = tmp_path / "serve.fleet.json"
        assert artifact.exists()

        assert main(["serve", "--validate-only", str(artifact)]) == 0

        data = json.loads(artifact.read_text())
        data["schema"] = "bogus"
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(data))
        assert main(["serve", "--validate-only", str(broken)]) == 1
