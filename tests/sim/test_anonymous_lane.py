"""The anonymous-lane escape hatch: drain_anonymous / schedule_anonymous.

Anonymous (fire-and-forget) entries make ``Simulator.to_state`` refuse
— a closure cannot be serialized. The sharded executor's forwarding
mode snapshots *at quiesce boundaries* by pulling its own pending
closures out of the heap, snapshotting, and re-injecting them with
their original (time, seq) identity so the replayed schedule is
bit-identical to the uninterrupted one. These are the regression tests
for that round trip.
"""

import pytest

from repro.sim.engine import Simulator, SnapshotError


class TestDrainAnonymous:
    def test_drained_entries_do_not_fire(self, sim):
        fired = []
        cb = lambda: fired.append(sim.now)  # noqa: E731
        sim.at_call(5.0, cb)
        sim.at_call(9.0, cb)
        drained = sim.drain_anonymous()
        assert [(t, c) for t, _, c in drained] == [(5.0, cb), (9.0, cb)]
        sim.run()
        assert fired == []

    def test_round_trip_preserves_firing_order(self, sim):
        order = []
        sim.at(3.0, lambda: order.append("keyed-3"), key="a")
        cb = lambda: order.append("anon")  # noqa: E731
        sim.at_call(3.0, cb)  # same time, later seq than keyed-3
        sim.at(3.0, lambda: order.append("keyed-3b"), key="b")
        drained = sim.drain_anonymous(matching=[cb])
        assert len(drained) == 1
        sim.schedule_anonymous(drained)
        sim.run()
        # Original sequence numbers travel with the entry: the anonymous
        # callback still fires between the two keyed events.
        assert order == ["keyed-3", "anon", "keyed-3b"]

    def test_matching_filter_is_identity_based(self, sim):
        mine = lambda: None  # noqa: E731
        other = lambda: None  # noqa: E731
        sim.at_call(1.0, mine)
        sim.at_call(2.0, other)
        drained = sim.drain_anonymous(matching=[mine])
        assert [cb for _, _, cb in drained] == [mine]
        # The non-matching entry is still live in the heap.
        assert sim.peek() == 2.0

    def test_until_bound_splits_at_boundary(self, sim):
        cb = lambda: None  # noqa: E731
        sim.at_call(4.0, cb)
        sim.at_call(6.0, cb)
        sim.at_call(6.0 + 1e-9, cb)
        drained = sim.drain_anonymous(until=6.0)
        assert [t for t, _, _ in drained] == [4.0, 6.0]  # inclusive bound
        assert sim.peek() == pytest.approx(6.0 + 1e-9)

    def test_past_times_clamp_to_now_and_keep_seq_order(self, sim):
        order = []
        first = lambda: order.append("first")  # noqa: E731
        second = lambda: order.append("second")  # noqa: E731
        sim.at_call(2.0, first)
        sim.at_call(3.0, second)
        drained = sim.drain_anonymous()
        sim.at(10.0, lambda: order.append("keyed"), key="k")
        sim.run()  # clock is now past both drained due times
        assert order == ["keyed"]
        sim.schedule_anonymous(drained)
        sim.run()
        # Both clamp to now=10.0; preserved seqs keep the original
        # relative order (and both predate the keyed event's seq, but
        # that event already fired).
        assert order == ["keyed", "first", "second"]

    def test_reinjecting_unallocated_seq_is_rejected(self, sim):
        cb = lambda: None  # noqa: E731
        with pytest.raises(ValueError, match="never allocated"):
            sim.schedule_anonymous([(1.0, 99, cb)])

    def test_snapshot_refuses_until_drained(self, sim):
        cb = lambda: None  # noqa: E731
        sim.at_call(5.0, cb)
        with pytest.raises(SnapshotError):
            sim.to_state()
        drained = sim.drain_anonymous(matching=[cb])
        state = sim.to_state()  # now clean
        restored = Simulator.from_state(state, callbacks={})
        # The restored simulator's cursor covers the drained seqs, so
        # the owning driver can re-inject into the restored instance.
        count = restored.schedule_anonymous(drained)
        assert count == 1
        assert restored.peek() == 5.0

    def test_drain_ignores_keyed_and_cancelled_entries(self, sim):
        sim.at(1.0, lambda: None, key="keyed")
        event = sim.at(2.0, lambda: None, key="doomed")
        event.cancel()
        assert sim.drain_anonymous() == []
        assert sim.peek() == 1.0
