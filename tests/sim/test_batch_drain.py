"""Batch-drain equivalence: the batched loop against the oracle loop.

The batched drain (``loop="batched"``) must be observationally
*identical* to the historical one-event-at-a-time loop
(``loop="reference"``) — same firing order, same ``now`` trajectory,
same stop reasons, same ``queue_depth``, same snapshots, same profiler
callbacks. These tests replay deterministic chaotic workloads (seeded
soups with quantized timestamps for same-time collisions, cancels
issued from inside callbacks, recurring events, mixed
``until``/``max_events`` horizons) under both loops and compare the
full observable record, plus an accelerator-level run under both
kernel backends.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import (
    LOOP_BATCHED,
    LOOP_REFERENCE,
    STOP_DRAINED,
    STOP_MAX_EVENTS,
    STOP_UNTIL,
    Simulator,
)

LOOPS = (LOOP_REFERENCE, LOOP_BATCHED)


class _Soup:
    """One seeded chaotic workload, replayable under any drain loop.

    All randomness flows through one ``random.Random(seed)`` consumed
    only from inside callbacks (plus seeding), so two replays that fire
    callbacks in the same order draw identically — and a replay that
    fires in a *different* order diverges loudly in the trace.
    """

    def __init__(self, sim: Simulator, seed: int, keyed_only: bool = False):
        self.sim = sim
        self.rng = random.Random(seed)
        self.keyed_only = keyed_only
        self.trace = []
        self.handles = []
        self.budget = 140  # total callbacks ever scheduled
        self.label = 0
        self.recurring_fires = 0

    def seed_events(self) -> None:
        for _ in range(12):
            self._schedule()
        if self.rng.random() < 0.7:
            cell = []
            rec = self.sim.every(
                1.75, lambda: self._recur(cell), key="soup-recurring"
            )
            cell.append(rec)

    def _recur(self, cell) -> None:
        self.recurring_fires += 1
        self.trace.append(("recur", self.sim.now, self.recurring_fires))
        if self.recurring_fires >= 5:
            cell[0].cancel()

    def _gap(self) -> float:
        # Quarter-cycle quantization forces same-timestamp collisions.
        return self.rng.randrange(0, 12) / 4.0

    def _schedule(self) -> None:
        if self.budget <= 0:
            return
        self.budget -= 1
        self.label += 1
        label = self.label

        def fire(label=label):
            self._fire(label)

        gap = self._gap()
        if not self.keyed_only and self.rng.random() < 0.5:
            self.sim.after_call(gap, fire)
            self.trace.append(("sched-anon", self.sim.now, label))
        else:
            event = self.sim.after(gap, fire, key=f"k{label}")
            self.handles.append(event)
            self.trace.append(("sched", self.sim.now, label))

    def _fire(self, label: int) -> None:
        self.trace.append(("fire", self.sim.now, label, self.sim.queue_depth))
        roll = self.rng.random()
        if roll < 0.6:
            self._schedule()
        if roll < 0.3:
            self._schedule()
        if self.handles and self.rng.random() < 0.35:
            victim = self.handles.pop(self.rng.randrange(len(self.handles)))
            victim.cancel()
            self.trace.append(("cancel", self.sim.now, self.sim.queue_depth))


def _run_program(loop: str, seed: int, keyed_only: bool = False):
    """Drive one soup through a seeded mix of run() calls; return the
    complete observable record."""
    sim = Simulator()
    soup = _Soup(sim, seed, keyed_only=keyed_only)
    soup.seed_events()
    ctrl = random.Random(seed + 90210)
    record = []
    for _ in range(8):
        choice = ctrl.random()
        if choice < 0.4:
            stop = sim.run(
                until=sim.now + ctrl.randrange(1, 20) / 2.0, loop=loop
            )
        elif choice < 0.7:
            stop = sim.run(max_events=ctrl.randrange(1, 30), loop=loop)
        else:
            stop = sim.run(loop=loop)
        record.append(
            (stop, sim.now, sim.queue_depth, sim.events_processed)
        )
        if keyed_only:
            # Mid-drain snapshots must agree byte for byte.
            record.append(
                json.dumps(sim.to_state(), sort_keys=True)
            )
    sim.run(loop=loop)
    record.append(("final", sim.now, sim.queue_depth, sim.events_processed))
    return soup.trace, record


class TestFuzzedEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_mixed_soup_trace_identical(self, seed):
        ref = _run_program(LOOP_REFERENCE, seed)
        bat = _run_program(LOOP_BATCHED, seed)
        assert ref == bat

    @pytest.mark.parametrize("seed", range(25, 45))
    def test_keyed_soup_with_snapshots_identical(self, seed):
        ref = _run_program(LOOP_REFERENCE, seed, keyed_only=True)
        bat = _run_program(LOOP_BATCHED, seed, keyed_only=True)
        assert ref == bat

    def test_same_timestamp_storm_fires_in_schedule_order(self):
        traces = {}
        for loop in LOOPS:
            sim = Simulator()
            fired = []
            for i in range(300):
                # Only three distinct timestamps: massive collisions.
                sim.at_call(float(i % 3), lambda i=i: fired.append(i))
            stop = sim.run(loop=loop)
            assert stop == STOP_DRAINED
            traces[loop] = fired
        assert traces[LOOP_REFERENCE] == traces[LOOP_BATCHED]
        # Within a timestamp, scheduling order is firing order.
        assert traces[LOOP_BATCHED] == sorted(
            range(300), key=lambda i: (i % 3, i)
        )

    @pytest.mark.parametrize("loop", LOOPS)
    def test_stop_reasons_and_clock_contract(self, loop):
        sim = Simulator()
        sim.at_call(5.0, lambda: None)
        sim.at(9.0, lambda: None)
        assert sim.run(until=2.0, loop=loop) == STOP_UNTIL
        assert sim.now == 2.0
        assert sim.run(max_events=1, loop=loop) == STOP_MAX_EVENTS
        assert sim.now == 5.0  # max_events stop does not advance
        assert sim.run(until=20.0, loop=loop) == STOP_DRAINED
        assert sim.now == 20.0  # drained-under-horizon advances to until

    @pytest.mark.parametrize("loop", LOOPS)
    def test_cancel_of_head_during_budget_run(self, loop):
        sim = Simulator()
        fired = []
        later = sim.after(10.0, lambda: fired.append("later"))
        sim.after(1.0, lambda: (fired.append("first"), later.cancel()))
        assert sim.run(max_events=1, loop=loop) == STOP_DRAINED
        assert fired == ["first"]


class TestProfilerEquivalence:
    def _profiled_run(self, loop):
        from repro.obs.profile import SimProfiler

        sim = Simulator()
        profiler = SimProfiler(clock=lambda: 0.0)
        sim.set_profiler(profiler)
        soup = _Soup(sim, seed=7)
        soup.seed_events()
        sim.run(loop=loop)
        return soup.trace, profiler.events, profiler.max_heap_depth

    def test_profiler_sees_identical_stream(self):
        ref = self._profiled_run(LOOP_REFERENCE)
        bat = self._profiled_run(LOOP_BATCHED)
        assert ref == bat

    def test_set_profiler_from_callback_takes_effect(self):
        """Regression: the run loop used to hoist ``self._profiler``
        once per run, so a profiler attached from inside a callback was
        silently ignored for the rest of the run. Both loops now
        re-read at batch boundaries (at most 64 events late)."""
        from repro.obs.profile import SimProfiler

        counts = {}
        for loop in LOOPS:
            sim = Simulator()
            profiler = SimProfiler(clock=lambda: 0.0)
            for i in range(200):
                sim.at(float(i), lambda: None)
            sim.at(9.5, lambda: sim.set_profiler(profiler))
            sim.run(loop=loop)
            counts[loop] = profiler.events
        # 201 events total, attach fires 11th; the re-read lands at the
        # next 64-event batch boundary under BOTH loops.
        assert counts[LOOP_REFERENCE] == counts[LOOP_BATCHED]
        assert counts[LOOP_BATCHED] >= 201 - 11 - 64
        assert counts[LOOP_BATCHED] > 0

    def test_detach_from_callback_takes_effect(self):
        from repro.obs.profile import SimProfiler

        counts = {}
        for loop in LOOPS:
            sim = Simulator()
            profiler = SimProfiler(clock=lambda: 0.0)
            sim.set_profiler(profiler)
            for i in range(200):
                sim.at(float(i), lambda: None)
            sim.at(9.5, lambda: sim.set_profiler(None))
            sim.run(loop=loop)
            counts[loop] = profiler.events
        assert counts[LOOP_REFERENCE] == counts[LOOP_BATCHED]
        assert counts[LOOP_BATCHED] < 201


class TestQueueDepthInvariant:
    """queue_depth == live heap entries, under arbitrary interleavings
    of schedule / cancel / peek / run / compaction."""

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_depth_equals_live_entries(self, seed):
        rng = random.Random(seed)
        sim = Simulator()
        handles = []
        for step in range(rng.randrange(20, 220)):
            op = rng.random()
            if op < 0.40:
                handles.append(
                    sim.after(rng.randrange(0, 16) / 2.0, lambda: None,
                              key=f"e{step}")
                )
            elif op < 0.55:
                sim.after_call(rng.randrange(0, 16) / 2.0, lambda: None)
            elif op < 0.80 and handles:
                handles.pop(rng.randrange(len(handles))).cancel()
            elif op < 0.90:
                sim.peek()
            else:
                sim.run(max_events=rng.randrange(1, 6))
            live = sum(
                1 for entry in sim._heap
                if entry[2] is None or not entry[2].cancelled
            )
            assert sim.queue_depth == live
        sim.run()
        assert sim.queue_depth == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.after(3.0, lambda: None)
        sim.after(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.queue_depth == 1
        sim.run()
        assert sim.queue_depth == 0

    def test_compaction_preserves_depth_and_order(self):
        sim = Simulator()
        fired = []
        keep = []
        for i in range(200):
            event = sim.after(float(i), lambda i=i: fired.append(i))
            if i % 2:
                event.cancel()  # enough tombstones to trigger compaction
            else:
                keep.append(event)
        assert sim.queue_depth == 100
        sim.run()
        assert fired == list(range(0, 200, 2))


class TestAtCalls:
    """Bulk anonymous scheduling must equal n scalar ``at_call``s."""

    @pytest.mark.parametrize("loop", LOOPS)
    def test_entries_identical_to_scalar_at_calls(self, loop):
        times = [3.0, 3.0, 7.5, 7.5, 7.5, 12.0]
        traces = {}
        for mode in ("bulk", "scalar"):
            sim = Simulator()
            fired = []
            if mode == "bulk":
                assert sim.at_calls(times, lambda: fired.append(sim.now)) == 6
            else:
                for t in times:
                    sim.at_call(t, lambda: fired.append(sim.now))
            sim.at(5.0, lambda: fired.append(("keyed", sim.now)))
            assert sim.run(loop=loop) == STOP_DRAINED
            traces[mode] = (fired, sim.events_processed, sim.now)
        assert traces["bulk"] == traces["scalar"]

    def test_empty_block_is_a_noop(self, sim):
        assert sim.at_calls([], lambda: None) == 0
        assert sim.queue_depth == 0
        assert sim._seq_next == 0

    def test_past_time_rejected_all_or_nothing(self, sim):
        sim.at_call(1.0, lambda: None)
        sim.run()
        assert sim.now == 1.0
        with pytest.raises(ValueError, match="cannot schedule"):
            sim.at_calls([2.0, 0.5, 3.0], lambda: None)
        # Nothing from the bad block was scheduled, no seqs burned.
        assert sim.queue_depth == 0
        assert sim._seq_next == 1

    def test_counts_toward_queue_depth_and_blocks_snapshot(self, sim):
        from repro.sim.engine import SnapshotError

        sim.at_calls([4.0, 5.0], lambda: None)
        assert sim.queue_depth == 2
        with pytest.raises(SnapshotError):
            sim.to_state()


class TestLegacyBaseline:
    """repro.sim.legacy is the perf baseline for sim.drain.reference —
    it must simulate the same machine as the current engine."""

    def test_trace_equivalent_to_current_engine(self):
        from repro.sim import legacy

        records = {}
        for make in (Simulator, legacy.Simulator):
            sim = make()
            trace = []
            handles = {}

            def fire(label):
                # events_processed is deliberately not sampled here:
                # the current engine folds the counter in per run/batch
                # while the legacy loop bumped it per event.
                trace.append((label, sim.now))
                if label == "a":
                    sim.after(2.5, lambda: fire("a-child"))
                    handles["victim"].cancel()

            handles["victim"] = sim.at(6.0, lambda: fire("victim"))
            sim.at(1.0, lambda: fire("a"))
            sim.at(1.0, lambda: fire("b"))
            sim.after(9.0, lambda: fire("late"))
            assert sim.run(until=2.0) == STOP_UNTIL
            assert sim.run(max_events=1) == STOP_MAX_EVENTS
            stop = sim.run()
            records[make.__module__] = (
                trace, stop, sim.now, sim.events_processed
            )
        assert records["repro.sim.engine"] == records["repro.sim.legacy"]

    def test_bench_arms_do_identical_work(self):
        from repro.exec import bench

        suite = bench.pinned_kernels()
        assert suite["sim.drain.reference"][1]() == (
            suite["sim.drain.batched"][1]()
        )


class TestAcceleratorEquivalence:
    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_load_point_report_identical(self, backend):
        from repro import kernels
        from repro.eval.runner import build_accelerator, simulate_load_point

        reports = {}
        for loop in LOOPS:
            previous = Simulator.default_loop
            Simulator.default_loop = loop
            try:
                with kernels.use_backend(backend):
                    accelerator = build_accelerator("500us", "hbfp8")
                    reports[loop] = simulate_load_point(
                        accelerator, 0.5, batches=2, seed=11
                    )
            finally:
                Simulator.default_loop = previous
        # repr compares every field including NaN p50s.
        assert repr(reports[LOOP_REFERENCE]) == repr(reports[LOOP_BATCHED])
        assert reports[LOOP_BATCHED].requests_completed > 0
