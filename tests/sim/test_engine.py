"""Event queue and simulator kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import (
    STOP_DRAINED,
    STOP_MAX_EVENTS,
    STOP_UNTIL,
    Simulator,
)


class TestScheduling:
    def test_runs_event_at_time(self, sim):
        fired = []
        sim.at(10, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [10.0]

    def test_after_is_relative(self, sim):
        sim.at(5, lambda: sim.after(3, lambda: setattr(sim, "_t", sim.now)))
        sim.run()
        assert sim._t == 8.0

    def test_rejects_past_scheduling(self, sim):
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(5, lambda: None)

    def test_rejects_negative_delay(self, sim):
        with pytest.raises(ValueError):
            sim.after(-1, lambda: None)

    def test_same_time_events_fire_in_schedule_order(self, sim):
        order = []
        sim.at(7, lambda: order.append("first"))
        sim.at(7, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.at(3, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_zero_delay_fires_at_current_time(self, sim):
        order = []
        sim.at(4, lambda: sim.after(0, lambda: order.append(sim.now)))
        sim.run()
        assert order == [4.0]

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_events_execute_in_time_order(self, times):
        sim = Simulator()
        seen = []
        for t in times:
            sim.at(t, lambda t=t: seen.append(t))
        sim.run()
        assert seen == sorted(times)


class TestRunControl:
    def test_until_is_inclusive(self, sim):
        fired = []
        sim.at(5, lambda: fired.append(1))
        sim.run(until=5)
        assert fired == [1]

    def test_until_stops_later_events(self, sim):
        fired = []
        sim.at(5, lambda: fired.append(1))
        sim.at(6, lambda: fired.append(2))
        sim.run(until=5)
        assert fired == [1]
        sim.run()
        assert fired == [1, 2]

    def test_until_advances_clock_without_events(self, sim):
        sim.run(until=100)
        assert sim.now == 100.0

    def test_max_events_limits_processing(self, sim):
        fired = []
        for t in range(10):
            sim.at(t, lambda: fired.append(1))
        sim.run(max_events=4)
        assert len(fired) == 4

    def test_events_processed_counter(self, sim):
        for t in range(5):
            sim.at(t, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_peek_skips_cancelled(self, sim):
        first = sim.at(1, lambda: None)
        sim.at(2, lambda: None)
        first.cancel()
        assert sim.peek() == 2.0

    def test_peek_empty(self, sim):
        assert sim.peek() is None

    def test_self_rescheduling_chain(self, sim):
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5:
                sim.after(10, tick)

        sim.after(10, tick)
        sim.run()
        assert count[0] == 5
        assert sim.now == 50.0


class TestStopReasons:
    """run() names why it stopped: drained, until, or max_events."""

    def test_drained(self, sim):
        sim.at(1, lambda: None)
        assert sim.run() == STOP_DRAINED

    def test_until_with_live_events_beyond(self, sim):
        sim.at(1, lambda: None)
        sim.at(10, lambda: None)
        assert sim.run(until=5) == STOP_UNTIL

    def test_until_with_queue_drained_first(self, sim):
        sim.at(1, lambda: None)
        assert sim.run(until=5) == STOP_DRAINED

    def test_max_events(self, sim):
        for t in range(3):
            sim.at(t, lambda: None)
        assert sim.run(max_events=2) == STOP_MAX_EVENTS


class TestMaxEventsClock:
    """Regression: stopping on the event budget must NOT advance the
    clock to ``until`` — live events may still sit between the last
    executed event and ``until``, and fabricating that simulated time
    skews every windowed statistic computed from ``now``."""

    def test_budget_stop_leaves_clock_at_last_event(self, sim):
        for t in range(1, 11):
            sim.at(t, lambda: None)
        reason = sim.run(until=100, max_events=3)
        assert reason == STOP_MAX_EVENTS
        assert sim.now == 3.0

    def test_until_stop_still_advances_clock(self, sim):
        sim.at(1, lambda: None)
        sim.at(200, lambda: None)
        assert sim.run(until=100) == STOP_UNTIL
        assert sim.now == 100.0

    def test_resume_after_budget_stop_is_seamless(self, sim):
        fired = []
        for t in range(1, 6):
            sim.at(t, lambda t=t: fired.append(t))
        sim.run(max_events=2)
        sim.run()
        assert fired == [1, 2, 3, 4, 5]


class TestHeapCompaction:
    """Regression: cancelled events used to sit in the heap as
    tombstones until popped, so cancel-heavy workloads (speculative
    timeouts, watchdogs) leaked O(cancelled) memory until drain. The
    simulator now compacts lazily once cancelled entries outnumber
    live ones."""

    def test_heap_stays_bounded_under_cancel_heavy_workload(self, sim):
        peak = 0
        for t in range(10_000):
            sim.at(t + 1, lambda: None).cancel()
            peak = max(peak, len(sim._heap))
        # Without compaction the peak would be ~10_000; with it the
        # heap never exceeds the compaction floor.
        assert peak < 2 * Simulator._COMPACT_MIN_SIZE
        assert sim.queue_depth == 0

    def test_queue_depth_counts_live_events_only(self, sim):
        events = [sim.at(t + 1, lambda: None) for t in range(10)]
        assert sim.queue_depth == 10
        for event in events[:4]:
            event.cancel()
        assert sim.queue_depth == 6

    def test_double_cancel_counts_once(self, sim):
        events = [sim.at(t + 1, lambda: None) for t in range(10)]
        events[0].cancel()
        events[0].cancel()
        assert sim.queue_depth == 9

    def test_events_fire_in_order_after_compaction(self, sim):
        fired = []
        events = [
            sim.at(t, lambda t=t: fired.append(t)) for t in range(1, 301)
        ]
        # Cancel two thirds — enough to cross the >50% dead threshold
        # and force at least one mid-stream compaction.
        for index, event in enumerate(events):
            if index % 3:
                event.cancel()
        sim.run()
        assert fired == list(range(1, 301, 3))

    def test_cancel_after_fire_does_not_skew_bookkeeping(self, sim):
        """A cancel of an already-popped event (RecurringEvent does
        this) must not create a tombstone: the counter would drift and
        queue_depth would under-report live events."""
        event = sim.at(1, lambda: None)
        sim.at(2, lambda: None)
        sim.run(max_events=1)
        event.cancel()
        assert sim.queue_depth == 1
        sim.run()
        assert sim.queue_depth == 0


class TestRecurringEvent:
    def test_fires_every_interval_until_cancelled(self, sim):
        fired = []
        recurring = sim.every(10, lambda: fired.append(sim.now))
        sim.run(until=35)
        recurring.cancel()
        sim.run()
        assert fired == [10.0, 20.0, 30.0]

    def test_rejects_nonpositive_interval(self, sim):
        with pytest.raises(ValueError):
            sim.every(0, lambda: None)

    def test_cancel_from_own_callback_drains_the_heap(self, sim):
        """Regression: the callback cancelling its own RecurringEvent
        used to race the reschedule — cancel() hit the already-popped
        event (a no-op) and _fire pushed a fresh live event anyway, so
        the heap never drained and run() spun until an external stop."""
        fired = []
        handle = {}

        def tick():
            fired.append(sim.now)
            handle["rec"].cancel()

        handle["rec"] = sim.every(5, tick)
        reason = sim.run(max_events=100)
        assert reason == STOP_DRAINED
        assert fired == [5.0]
        # No phantom event was scheduled after the cancel.
        assert sim.now == 5.0
        assert sim.peek() is None

    def test_cancel_between_firings_skips_inflight_event(self, sim):
        fired = []
        recurring = sim.every(5, lambda: fired.append(sim.now))
        sim.at(12, recurring.cancel)
        assert sim.run(max_events=100) == STOP_DRAINED
        assert fired == [5.0, 10.0]
