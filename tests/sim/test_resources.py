"""Serial resources, port sets, bandwidth channels."""

import pytest

from repro.sim.resources import BandwidthChannel, PortSet, SerialResource


class TestSerialResource:
    def test_serves_immediately_when_free(self, sim):
        res = SerialResource(sim)
        starts = []
        res.request(10, on_grant=lambda: starts.append(sim.now))
        sim.run()
        assert starts == [0.0]

    def test_serializes_requests(self, sim):
        res = SerialResource(sim)
        starts = []
        res.request(10, on_grant=lambda: starts.append(sim.now))
        res.request(5, on_grant=lambda: starts.append(sim.now))
        sim.run()
        assert starts == [0.0, 10.0]

    def test_done_fires_at_completion(self, sim):
        res = SerialResource(sim)
        done = []
        res.request(7, on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [7.0]

    def test_priority_orders_queue(self, sim):
        res = SerialResource(sim)
        order = []
        res.request(10)  # occupies the unit
        res.request(1, on_grant=lambda: order.append("low"), priority=5)
        res.request(1, on_grant=lambda: order.append("high"), priority=0)
        sim.run()
        assert order == ["high", "low"]

    def test_fifo_within_priority(self, sim):
        res = SerialResource(sim)
        order = []
        res.request(10)
        res.request(1, on_grant=lambda: order.append("a"), priority=1)
        res.request(1, on_grant=lambda: order.append("b"), priority=1)
        sim.run()
        assert order == ["a", "b"]

    def test_busy_accounting_by_tag(self, sim):
        res = SerialResource(sim)
        res.request(10, tag="x")
        res.request(5, tag="y")
        res.request(3, tag="x")
        sim.run()
        assert res.busy_by_tag == {"x": 13.0, "y": 5.0}
        assert res.busy_cycles == 18.0

    def test_utilization(self, sim):
        res = SerialResource(sim)
        res.request(30)
        sim.run(until=60)
        assert res.utilization() == pytest.approx(0.5)

    def test_rejects_negative_duration(self, sim):
        res = SerialResource(sim)
        with pytest.raises(ValueError):
            res.request(-1)

    def test_queue_depth(self, sim):
        res = SerialResource(sim)
        res.request(10)
        res.request(10)
        res.request(10)
        sim.run(max_events=0)
        assert res.queue_depth == 2  # one in service, two waiting


class TestPortSet:
    def test_parallel_service_across_ports(self, sim):
        ports = PortSet(sim, count=2)
        starts = []
        ports.request(10, on_grant=lambda: starts.append(sim.now))
        ports.request(10, on_grant=lambda: starts.append(sim.now))
        sim.run()
        assert starts == [0.0, 0.0]

    def test_third_request_waits(self, sim):
        ports = PortSet(sim, count=2)
        starts = []
        for _ in range(3):
            ports.request(10, on_grant=lambda: starts.append(sim.now))
        sim.run()
        assert starts == [0.0, 0.0, 10.0]

    def test_rejects_zero_ports(self, sim):
        with pytest.raises(ValueError):
            PortSet(sim, count=0)

    def test_busy_cycles_aggregate(self, sim):
        ports = PortSet(sim, count=2)
        ports.request(4)
        ports.request(6)
        sim.run()
        assert ports.busy_cycles == 10.0


class TestBandwidthChannel:
    def test_transfer_time_is_size_over_rate(self, sim):
        chan = BandwidthChannel(sim, bytes_per_cycle=64)
        done = []
        chan.transfer(640, on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [10.0]

    def test_fixed_latency_added_after_serialization(self, sim):
        chan = BandwidthChannel(sim, bytes_per_cycle=64, fixed_latency=5)
        done = []
        chan.transfer(640, on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [15.0]

    def test_transfers_serialize(self, sim):
        chan = BandwidthChannel(sim, bytes_per_cycle=10)
        done = []
        chan.transfer(100, on_done=lambda: done.append(sim.now))
        chan.transfer(50, on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [10.0, 15.0]

    def test_priority_reorders(self, sim):
        chan = BandwidthChannel(sim, bytes_per_cycle=10)
        done = []
        chan.transfer(100)  # occupies the pipe
        chan.transfer(10, on_done=lambda: done.append("bulk"), priority=2)
        chan.transfer(10, on_done=lambda: done.append("urgent"), priority=0)
        sim.run()
        assert done == ["urgent", "bulk"]

    def test_bytes_accounting(self, sim):
        chan = BandwidthChannel(sim, bytes_per_cycle=10)
        chan.transfer(30)
        chan.transfer(70)
        sim.run()
        assert chan.bytes_transferred == 100.0

    def test_utilization(self, sim):
        chan = BandwidthChannel(sim, bytes_per_cycle=10)
        chan.transfer(100)
        sim.run(until=20)
        assert chan.utilization() == pytest.approx(0.5)

    def test_rejects_nonpositive_bandwidth(self, sim):
        with pytest.raises(ValueError):
            BandwidthChannel(sim, bytes_per_cycle=0)

    def test_rejects_negative_size(self, sim):
        chan = BandwidthChannel(sim, bytes_per_cycle=10)
        with pytest.raises(ValueError):
            chan.transfer(-5)
