"""Latency, throughput and cycle-accounting collectors."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    CYCLE_CATEGORIES,
    CycleAccounting,
    LatencyStats,
    ThroughputMeter,
    inf_aware_percentile,
)


class TestInfAwarePercentile:
    def test_matches_numpy_on_finite_samples(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for q in (0, 25, 50, 90, 99, 100):
            assert inf_aware_percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_regression_two_inf_sentinels_no_longer_nan(self):
        """Regression: with >=2 inf samples the p99 interpolation step
        has two infinite endpoints and np.percentile computes
        inf - inf = nan. The inf-aware version resolves it to inf."""
        values = [1.0] * 98 + [math.inf, math.inf]
        with np.errstate(invalid="ignore"):
            assert math.isnan(float(np.percentile(values, 99)))  # old bug
        assert inf_aware_percentile(values, 99) == math.inf

    def test_rank_interpolating_toward_inf_is_inf(self):
        # position 98.01 sits between the last finite sample and inf:
        # any non-zero weight on the infinite endpoint means inf.
        values = [1.0] * 99 + [math.inf]
        assert inf_aware_percentile(values, 99) == math.inf

    def test_rank_exactly_on_finite_sample_stays_finite(self):
        # 5 samples: position at q=50 is exactly index 2 (no fraction).
        values = [1.0, 2.0, 3.0, math.inf, math.inf]
        assert inf_aware_percentile(values, 50) == 3.0

    def test_finite_region_unaffected_by_the_tail(self):
        finite = [float(v) for v in range(1, 81)]
        with_tail = finite + [math.inf] * 20
        # q low enough that both interpolation endpoints stay finite.
        assert inf_aware_percentile(with_tail, 50) == pytest.approx(
            float(np.percentile(with_tail, 50))
        )

    def test_all_inf(self):
        assert inf_aware_percentile([math.inf, math.inf], 50) == math.inf

    def test_rejects_nan_samples(self):
        with pytest.raises(ValueError):
            inf_aware_percentile([1.0, math.nan], 50)

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError):
            inf_aware_percentile([], 50)
        with pytest.raises(ValueError):
            inf_aware_percentile([1.0], 101)

    @given(
        st.lists(st.floats(0, 1e9), min_size=1, max_size=100),
        st.integers(0, 5),
    )
    def test_deterministic_and_never_nan_with_inf_mixed_in(
        self, values, inf_count
    ):
        mixed = values + [math.inf] * inf_count
        for q in (50.0, 99.0, 99.9):
            result = inf_aware_percentile(mixed, q)
            assert not math.isnan(result)
            assert result == inf_aware_percentile(mixed, q)

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=100))
    def test_equals_numpy_when_all_finite(self, values):
        for q in (0.0, 50.0, 99.0, 100.0):
            assert inf_aware_percentile(values, q) == pytest.approx(
                float(np.percentile(values, q)), nan_ok=False
            )


class TestLatencyStats:
    def test_percentile_of_known_distribution(self):
        stats = LatencyStats()
        for v in range(1, 101):
            stats.record(float(v))
        assert stats.percentile(50) == pytest.approx(50.5)
        assert stats.p99() == pytest.approx(99.01)

    def test_mean_and_max(self):
        stats = LatencyStats()
        for v in (1.0, 2.0, 9.0):
            stats.record(v)
        assert stats.mean() == pytest.approx(4.0)
        assert stats.max() == 9.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyStats().p99()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-1.0)

    def test_rejects_nan_sample(self):
        with pytest.raises(ValueError):
            LatencyStats().record(math.nan)

    def test_inf_sentinels_give_deterministic_percentiles(self):
        stats = LatencyStats()
        for v in range(1, 99):
            stats.record(float(v))
        stats.record(math.inf)
        stats.record(math.inf)
        assert stats.percentile(50) == pytest.approx(50.5)
        assert stats.p99() == math.inf
        assert not math.isnan(stats.p99())

    def test_samples_since_window(self):
        stats = LatencyStats()
        for v in (1.0, 2.0, 3.0):
            stats.record(v)
        assert stats.samples_since(1) == [2.0, 3.0]

    def test_metrics_source_view(self):
        stats = LatencyStats()
        assert stats.metrics() == {"count": 0.0}
        for v in range(1, 101):
            stats.record(float(v))
        view = stats.metrics()
        assert view["count"] == 100.0
        assert view["p50"] == pytest.approx(50.5)
        assert view["p99"] == pytest.approx(99.01)
        assert view["max"] == 100.0

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=200))
    def test_percentiles_bounded_by_extremes(self, values):
        stats = LatencyStats()
        for v in values:
            stats.record(v)
        assert min(values) <= stats.p99() <= max(values)

    @given(st.lists(st.floats(0, 1e6), min_size=2, max_size=100))
    def test_percentiles_monotone_in_q(self, values):
        stats = LatencyStats()
        for v in values:
            stats.record(v)
        assert stats.percentile(50) <= stats.percentile(90) <= stats.percentile(99)


class TestThroughputMeter:
    def test_top_s_conversion(self):
        meter = ThroughputMeter()
        meter.record(1e9, cycle=10)
        # 1e9 ops over 1e6 cycles at 1 GHz = 1e12 op/s = 1 TOp/s.
        assert meter.top_s(1e6, 1e9) == pytest.approx(1.0)

    def test_accumulates(self):
        meter = ThroughputMeter()
        meter.record(5.0, 1)
        meter.record(7.0, 2)
        assert meter.total_ops == 12.0

    def test_zero_horizon(self):
        assert ThroughputMeter().ops_per_cycle(0) == 0.0

    def test_rejects_negative_ops(self):
        with pytest.raises(ValueError):
            ThroughputMeter().record(-1, 0)


class TestCycleAccounting:
    def test_breakdown_sums_to_one(self):
        acct = CycleAccounting()
        acct.add("working", 30)
        acct.add("dummy", 20)
        acct.add("other", 10)
        breakdown = acct.breakdown(100)
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["idle"] == pytest.approx(0.4)

    def test_categories_match_figure8(self):
        acct = CycleAccounting()
        breakdown = acct.breakdown(10)
        assert set(breakdown) == set(CYCLE_CATEGORIES)

    def test_idle_cannot_be_recorded(self):
        with pytest.raises(ValueError):
            CycleAccounting().add("idle", 1)

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            CycleAccounting().add("sleeping", 1)

    def test_overflow_detected(self):
        acct = CycleAccounting()
        acct.add("working", 200)
        with pytest.raises(ValueError):
            acct.breakdown(100)

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            CycleAccounting().add("working", -5)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            CycleAccounting().breakdown(0)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["working", "dummy", "other"]),
                st.floats(0, 100),
            ),
            max_size=30,
        )
    )
    def test_breakdown_always_normalized(self, entries):
        acct = CycleAccounting()
        for category, cycles in entries:
            acct.add(category, cycles)
        window = max(acct.busy_total(), 1.0) * 2
        breakdown = acct.breakdown(window)
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert all(0 <= v <= 1 for v in breakdown.values())
