"""Latency, throughput and cycle-accounting collectors."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    CYCLE_CATEGORIES,
    CycleAccounting,
    LatencyStats,
    ThroughputMeter,
)


class TestLatencyStats:
    def test_percentile_of_known_distribution(self):
        stats = LatencyStats()
        for v in range(1, 101):
            stats.record(float(v))
        assert stats.percentile(50) == pytest.approx(50.5)
        assert stats.p99() == pytest.approx(99.01)

    def test_mean_and_max(self):
        stats = LatencyStats()
        for v in (1.0, 2.0, 9.0):
            stats.record(v)
        assert stats.mean() == pytest.approx(4.0)
        assert stats.max() == 9.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyStats().p99()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-1.0)

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=200))
    def test_percentiles_bounded_by_extremes(self, values):
        stats = LatencyStats()
        for v in values:
            stats.record(v)
        assert min(values) <= stats.p99() <= max(values)

    @given(st.lists(st.floats(0, 1e6), min_size=2, max_size=100))
    def test_percentiles_monotone_in_q(self, values):
        stats = LatencyStats()
        for v in values:
            stats.record(v)
        assert stats.percentile(50) <= stats.percentile(90) <= stats.percentile(99)


class TestThroughputMeter:
    def test_top_s_conversion(self):
        meter = ThroughputMeter()
        meter.record(1e9, cycle=10)
        # 1e9 ops over 1e6 cycles at 1 GHz = 1e12 op/s = 1 TOp/s.
        assert meter.top_s(1e6, 1e9) == pytest.approx(1.0)

    def test_accumulates(self):
        meter = ThroughputMeter()
        meter.record(5.0, 1)
        meter.record(7.0, 2)
        assert meter.total_ops == 12.0

    def test_zero_horizon(self):
        assert ThroughputMeter().ops_per_cycle(0) == 0.0

    def test_rejects_negative_ops(self):
        with pytest.raises(ValueError):
            ThroughputMeter().record(-1, 0)


class TestCycleAccounting:
    def test_breakdown_sums_to_one(self):
        acct = CycleAccounting()
        acct.add("working", 30)
        acct.add("dummy", 20)
        acct.add("other", 10)
        breakdown = acct.breakdown(100)
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["idle"] == pytest.approx(0.4)

    def test_categories_match_figure8(self):
        acct = CycleAccounting()
        breakdown = acct.breakdown(10)
        assert set(breakdown) == set(CYCLE_CATEGORIES)

    def test_idle_cannot_be_recorded(self):
        with pytest.raises(ValueError):
            CycleAccounting().add("idle", 1)

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            CycleAccounting().add("sleeping", 1)

    def test_overflow_detected(self):
        acct = CycleAccounting()
        acct.add("working", 200)
        with pytest.raises(ValueError):
            acct.breakdown(100)

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            CycleAccounting().add("working", -5)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            CycleAccounting().breakdown(0)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["working", "dummy", "other"]),
                st.floats(0, 100),
            ),
            max_size=30,
        )
    )
    def test_breakdown_always_normalized(self, entries):
        acct = CycleAccounting()
        for category, cycles in entries:
            acct.add(category, cycles)
        window = max(acct.busy_total(), 1.0) * 2
        breakdown = acct.breakdown(window)
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert all(0 <= v <= 1 for v in breakdown.values())
