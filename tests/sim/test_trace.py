"""Trace recorder."""

from repro.sim.trace import Tracer


class TestTracer:
    def test_records_in_order(self):
        tracer = Tracer()
        tracer.emit(1.0, "mmu", "issue", payload=1)
        tracer.emit(2.0, "mmu", "done", payload=1)
        assert [r.event for r in tracer.records] == ["issue", "done"]

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1.0, "mmu", "issue")
        assert tracer.records == []

    def test_filter_by_component_and_event(self):
        tracer = Tracer()
        tracer.emit(1.0, "mmu", "issue")
        tracer.emit(2.0, "simd", "issue")
        tracer.emit(3.0, "mmu", "done")
        assert len(tracer.filter(component="mmu")) == 2
        assert len(tracer.filter(event="issue")) == 2
        assert len(tracer.filter(component="mmu", event="issue")) == 1

    def test_timeline(self):
        tracer = Tracer()
        tracer.emit(1.0, "mmu", "issue", payload="a")
        tracer.emit(5.0, "mmu", "issue", payload="b")
        assert tracer.timeline("issue") == [(1.0, "a"), (5.0, "b")]

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "mmu", "issue")
        tracer.clear()
        assert tracer.records == []
