"""Tests for repro.state: checkpoint files, the completion journal,
graceful shutdown and the bit-exact snapshot/restore contract."""
