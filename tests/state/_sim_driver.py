"""Standalone driver for the cross-process snapshot property test.

Runs a deterministic keyed-event workload on :class:`Simulator` in one
of three modes (printed as JSON on stdout):

* ``full M TOTAL`` — run TOTAL events uninterrupted; print the trace
  and the final ``to_state``.
* ``split M K`` — run K events, snapshot; print the head trace and the
  snapshot.
* ``resume M REMAINING`` — read a snapshot from stdin, restore into
  this **fresh process**, run REMAINING more events; print the tail
  trace and the final ``to_state``.

The workload exercises the snapshot edge cases on purpose: same-time
events ordered by sequence number, a keyed recurring ticker, and
cancelled events whose tombstones a snapshot must drop without
affecting the continuation.
"""

import json
import sys

from repro.sim.engine import Simulator


def build(m):
    """The workload: ``m`` callback slots, each firing appends
    ``[now, slot]`` and schedules its successor; slot 0 mod 4 also
    creates-and-cancels an extra event (a heap tombstone). ``ctx``
    indirection lets ``resume`` bind the same callbacks to a restored
    simulator."""
    ctx = {"sim": None}
    trace = []
    callbacks = {}

    def make(slot):
        def fire():
            sim = ctx["sim"]
            trace.append([sim.now, slot])
            succ = (slot * 7 + 3) % m
            sim.after(
                1.0 + (slot % 5), callbacks["ev%d" % succ], key="ev%d" % succ
            )
            if slot % 4 == 0:
                extra = sim.after(
                    2.0, callbacks["ev%d" % slot], key="ev%d" % slot
                )
                extra.cancel()

        return fire

    for slot in range(m):
        callbacks["ev%d" % slot] = make(slot)

    def tick():
        trace.append([ctx["sim"].now, -1])

    callbacks["tick"] = tick
    return ctx, trace, callbacks


def fresh(m):
    ctx, trace, callbacks = build(m)
    sim = Simulator()
    ctx["sim"] = sim
    for slot in range(m):
        sim.at((slot + 1) * 0.75, callbacks["ev%d" % slot], key="ev%d" % slot)
    sim.every(3.5, callbacks["tick"], key="tick")
    return sim, trace


def main(argv):
    mode, m = argv[0], int(argv[1])
    if mode == "full":
        sim, trace = fresh(m)
        sim.run(max_events=int(argv[2]))
        print(json.dumps({"trace": trace, "state": sim.to_state()}))
    elif mode == "split":
        sim, trace = fresh(m)
        sim.run(max_events=int(argv[2]))
        print(json.dumps({"trace": trace, "state": sim.to_state()}))
    elif mode == "resume":
        snapshot = json.load(sys.stdin)
        ctx, trace, callbacks = build(m)
        sim = Simulator.from_state(snapshot, callbacks)
        ctx["sim"] = sim
        sim.run(max_events=int(argv[2]))
        print(json.dumps({"trace": trace, "state": sim.to_state()}))
    else:
        raise SystemExit(f"unknown mode {mode!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
