"""Checkpoint files and the completion journal: atomicity, checksums,
torn-tail tolerance and canonical-form byte identity."""

import json

import pytest

from repro.exec.canonical import canonical_json, config_digest
from repro.state.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    CheckpointStore,
    CompletionJournal,
    read_checkpoint,
    write_checkpoint,
)
from repro.state.checkpoint import JOURNAL_SCHEMA


class TestCheckpointFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        write_checkpoint(path, {"cursor": 7, "rows": [1, 2]},
                         kind="demo", step=7)
        payload = read_checkpoint(path, kind="demo")
        assert payload["kind"] == "demo"
        assert payload["step"] == 7
        assert payload["state"] == {"cursor": 7, "rows": [1, 2]}

    def test_document_is_canonical_and_self_checksummed(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        digest = write_checkpoint(path, {"a": 1}, kind="demo")
        document = json.loads(path.read_text())
        assert document["schema"] == CHECKPOINT_SCHEMA
        assert document["payload_sha256"] == digest
        assert config_digest(json.loads(document["payload"])) == digest

    def test_kind_mismatch_raises(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        write_checkpoint(path, {}, kind="sweep")
        with pytest.raises(CheckpointError, match="kind"):
            read_checkpoint(path, kind="chaos")

    def test_tampered_payload_raises(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        write_checkpoint(path, {"cursor": 7}, kind="demo")
        document = json.loads(path.read_text())
        document["payload"] = document["payload"].replace("7", "8")
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_garbage_raises_missing_is_file_not_found(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            read_checkpoint(path)
        with pytest.raises(FileNotFoundError):
            read_checkpoint(tmp_path / "absent.ckpt.json")

    def test_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        for step in range(3):
            write_checkpoint(path, {"step": step}, kind="demo", step=step)
        assert [p.name for p in tmp_path.iterdir()] == ["run.ckpt.json"]


class TestCheckpointStore:
    def test_latest_wins(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("sweep", {"executed": 8}, step=8)
        store.save("sweep", {"executed": 16}, step=16)
        payload = store.load("sweep")
        assert payload["step"] == 16
        assert payload["state"] == {"executed": 16}

    def test_absent_kind_loads_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load("never-saved") is None

    def test_kinds_are_isolated(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("sweep", {"n": 1})
        store.save("chaos", {"n": 2})
        assert store.load("sweep")["state"] == {"n": 1}
        assert store.load("chaos")["state"] == {"n": 2}


class TestCompletionJournal:
    def test_append_replay_across_instances(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CompletionJournal(path)
        journal.append("job-a", {"value": 1})
        journal.append("job-b", [1, 2, 3])
        replayed = CompletionJournal(path)
        assert len(replayed) == 2
        assert "job-a" in replayed
        assert replayed.get("job-a") == {"value": 1}
        assert replayed.get("job-b") == [1, 2, 3]
        assert replayed.get("never-ran") is None

    def test_line_is_byte_identical_to_canonical_record(self, tmp_path):
        """The splice-built line (one result serialization) must equal
        ``canonical_json`` of the full record byte for byte — the
        on-disk format is part of the schema, not an implementation
        detail."""
        path = tmp_path / "journal.jsonl"
        journal = CompletionJournal(path)
        results = {
            "k1": {"nested": {"t": (1, 2)}, "f": 2.5},
            "k2": [float("inf"), float("nan"), "héllo ✓"],
        }
        for key, result in results.items():
            journal.append(key, result)
        for (key, result), line in zip(
            results.items(), path.read_text().splitlines()
        ):
            record = {
                "schema": JOURNAL_SCHEMA,
                "key": key,
                "result": result,
                "sha256": config_digest({"key": key, "result": result}),
            }
            assert line == canonical_json(record)

    def test_in_process_reads_match_disk_replay(self, tmp_path):
        """Results are normalized (tuples -> lists) the moment they are
        journaled, so the writing process and a resumed process see the
        same values."""
        path = tmp_path / "journal.jsonl"
        journal = CompletionJournal(path)
        journal.append("k", {"t": (1, 2)})
        assert journal.get("k") == {"t": [1, 2]}
        assert CompletionJournal(path).get("k") == {"t": [1, 2]}

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CompletionJournal(path)
        for index in range(3):
            journal.append(f"job-{index}", index)
        text = path.read_text()
        lines = text.splitlines()
        path.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])
        survivor = CompletionJournal(path)
        assert len(survivor) == 2
        assert "job-2" not in survivor

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CompletionJournal(path)
        for index in range(3):
            journal.append(f"job-{index}", index)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="followed by valid"):
            CompletionJournal(path).load()

    def test_tampered_result_fails_its_checksum(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CompletionJournal(path)
        journal.append("job-a", {"value": 1})
        journal.append("job-b", {"value": 2})
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"value":1', '"value":9')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="checksum"):
            CompletionJournal(path).load()

    def test_absent_journal_is_empty(self, tmp_path):
        journal = CompletionJournal(tmp_path / "never-written.jsonl")
        assert len(journal) == 0
        assert journal.get("anything") is None
