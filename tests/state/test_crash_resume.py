"""End-to-end crash recovery: a sweep interrupted at a job boundary
(graceful signal or SIGKILL drill) and restarted with ``--resume``
converges to the byte-identical artifact of an uninterrupted run."""

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exec import cli as exec_cli
from repro.faults.killswitch import KillSwitch
from repro.state.signals import ShutdownRequested

SRC = Path(__file__).resolve().parents[2] / "src"

SWEEP_FLAGS = ["--encodings", "hbfp8", "--n-max", "24", "--chunk", "4"]


def _sweep_args(extra):
    parser = argparse.ArgumentParser()
    exec_cli.add_sweep_arguments(parser)
    return parser.parse_args(SWEEP_FLAGS + [str(a) for a in extra])


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def _repro(extra, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", "sweep"] + SWEEP_FLAGS
        + [str(a) for a in extra],
        capture_output=True, text=True, env=_env(), **kwargs,
    )


class _StubShutdown:
    """Raises like GracefulShutdown would, after N quiet checks —
    deterministic stand-in for a SIGTERM landing mid-sweep."""

    def __init__(self, after):
        self.after = after
        self.checks = 0

    def check(self):
        self.checks += 1
        if self.checks > self.after:
            raise ShutdownRequested(signal.SIGTERM)


class TestGracefulBoundary:
    def test_interrupted_then_resumed_sweep_is_byte_identical(self, tmp_path):
        ref_dir = tmp_path / "reference"
        out_dir = tmp_path / "resumed"
        ckpt = tmp_path / "ckpt"

        assert exec_cli.run_sweep(_sweep_args(["--report-dir", ref_dir])) == 0
        reference = (ref_dir / "sweep.json").read_bytes()

        # Shutdown lands after 3 job boundaries: exactly 3 journal
        # lines, never a torn one — the check runs between jobs.
        stub = _StubShutdown(after=3)
        interrupted = _sweep_args(
            ["--checkpoint-dir", ckpt, "--checkpoint-every", 2,
             "--report-dir", out_dir]
        )
        with pytest.raises(ShutdownRequested):
            exec_cli.run_sweep(interrupted, shutdown=stub)
        journal_lines = (ckpt / "journal.jsonl").read_text().splitlines()
        assert len(journal_lines) == 3
        # The periodic barrier also left an observable progress marker.
        progress = json.loads(
            json.loads((ckpt / "sweep.ckpt.json").read_text())["payload"]
        )
        assert progress["state"]["counters"]["executed"] >= 2

        resumed = _sweep_args(
            ["--checkpoint-dir", ckpt, "--resume", "--report-dir", out_dir]
        )
        assert exec_cli.run_sweep(resumed) == 0
        assert (out_dir / "sweep.json").read_bytes() == reference

    def test_fresh_run_discards_a_stale_journal(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "journal.jsonl").write_text("poison\n")
        args = _sweep_args(["--checkpoint-dir", ckpt])
        assert exec_cli.run_sweep(args) == 0
        lines = (ckpt / "journal.jsonl").read_text().splitlines()
        assert lines and "poison" not in lines[0]


class TestKillNineDrill:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        """The CI drill, in miniature: ``--kill-after 3`` SIGKILLs the
        process after the third journal append; ``--resume`` skips the
        journaled jobs and the artifact matches the uninterrupted run
        byte for byte."""
        ref_dir = tmp_path / "reference"
        out_dir = tmp_path / "resumed"
        ckpt = tmp_path / "ckpt"

        reference = _repro(["--report-dir", ref_dir])
        assert reference.returncode == 0, reference.stderr

        killed = _repro(
            ["--checkpoint-dir", ckpt, "--kill-after", 3,
             "--report-dir", out_dir]
        )
        assert killed.returncode == -signal.SIGKILL
        assert len((ckpt / "journal.jsonl").read_text().splitlines()) == 3
        assert not (out_dir / "sweep.json").exists()

        resumed = _repro(
            ["--checkpoint-dir", ckpt, "--resume", "--report-dir", out_dir]
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "journal_hits=3" in resumed.stderr
        assert (out_dir / "sweep.json").read_bytes() == (
            (ref_dir / "sweep.json").read_bytes()
        )


class TestSignalExit:
    def test_sigterm_exits_named_and_tracebackless(self, tmp_path):
        """``python -m repro`` under SIGTERM: final journal state is
        consistent, the exit code is 143, stderr names the reason and
        points at --resume — and never shows a traceback."""
        ckpt = tmp_path / "ckpt"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep",
             "--encodings", "hbfp8", "--n-max", "220", "--chunk", "2",
             "--checkpoint-dir", str(ckpt)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=_env(),
        )
        journal = ckpt / "journal.jsonl"
        try:
            deadline = time.time() + 60
            while time.time() < deadline:
                if journal.exists() and journal.read_text().count("\n") >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("sweep never journaled a completion")
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 143
        assert "[shutdown] SIGTERM" in stderr
        assert "--resume" in stderr
        assert "Traceback" not in stderr
        # Every journal line is complete: a fresh replay parses them all.
        from repro.state.checkpoint import CompletionJournal

        assert len(CompletionJournal(journal)) >= 1


class TestKillSwitch:
    def test_disabled_switch_never_fires(self):
        switch = KillSwitch(None)
        assert not switch.armed
        for _ in range(100):
            switch.note_unit_done()
        assert switch.units_done == 0

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="kill-after"):
            KillSwitch(0)

    def test_armed_counts_up_to_the_mark(self):
        switch = KillSwitch(1000)
        assert switch.armed
        for _ in range(3):
            switch.note_unit_done()
        assert switch.units_done == 3
