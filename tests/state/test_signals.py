"""GracefulShutdown: signal-to-flag conversion, exit codes, handler
restoration and the double-signal escape hatch."""

import os
import signal

import pytest

from repro.state.signals import GracefulShutdown, ShutdownRequested


def _deliver(signum):
    """Send ``signum`` to ourselves and let the interpreter run the
    Python-level handler (CPython processes pending signals on the next
    bytecode boundary)."""
    os.kill(os.getpid(), signum)
    for _ in range(100):
        pass


class TestGracefulShutdown:
    def test_check_is_quiet_without_a_signal(self):
        with GracefulShutdown() as shutdown:
            shutdown.check()
            assert shutdown.pending is None

    @pytest.mark.parametrize(
        "signum,code",
        [(signal.SIGINT, 130), (signal.SIGTERM, 143)],
    )
    def test_signal_raises_at_the_next_check(self, signum, code):
        with GracefulShutdown() as shutdown:
            _deliver(signum)
            assert shutdown.pending == signum
            with pytest.raises(ShutdownRequested) as excinfo:
                shutdown.check()
            assert excinfo.value.exit_code == code
            assert excinfo.value.signame in ("SIGINT", "SIGTERM")

    def test_handlers_restored_on_exit(self):
        before = {
            signal.SIGINT: signal.getsignal(signal.SIGINT),
            signal.SIGTERM: signal.getsignal(signal.SIGTERM),
        }
        with GracefulShutdown():
            assert signal.getsignal(signal.SIGINT) is not before[signal.SIGINT]
        for signum, handler in before.items():
            assert signal.getsignal(signum) is handler

    def test_second_signal_restores_default_disposition(self):
        """Two SIGINTs while the first is still pending must arm the
        default handler, so a third would terminate immediately (we
        stop at asserting the disposition — actually delivering it
        would kill the test run)."""
        with GracefulShutdown() as shutdown:
            _deliver(signal.SIGINT)
            _deliver(signal.SIGINT)
            assert shutdown.pending == signal.SIGINT
            assert signal.getsignal(signal.SIGINT) is signal.SIG_DFL
            assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL

    def test_exit_code_convention(self):
        assert ShutdownRequested(signal.SIGINT).exit_code == 130
        assert ShutdownRequested(signal.SIGTERM).exit_code == 143
