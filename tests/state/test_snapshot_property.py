"""Property test for the bit-exact snapshot contract: a simulator
snapshotted at a fuzzed event index and restored in a **fresh process**
continues exactly like the uninterrupted run — same trace, same final
state, byte for byte."""

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exec.canonical import canonical_json
from repro.sim.engine import Simulator, SnapshotError

DRIVER = Path(__file__).with_name("_sim_driver.py")
SRC = Path(__file__).resolve().parents[2] / "src"


def _drive(args, stdin_text=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, str(DRIVER)] + [str(a) for a in args],
        input=stdin_text, capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


class TestCrossProcessRestore:
    @pytest.mark.parametrize("seed", range(6))
    def test_fuzzed_snapshot_point_is_bit_exact(self, seed):
        rng = random.Random(seed)
        m = rng.randrange(3, 9)
        total = rng.randrange(40, 120)
        cut = rng.randrange(1, total)

        full = _drive(["full", m, total])
        head = _drive(["split", m, cut])
        tail = _drive(
            ["resume", m, total - cut],
            stdin_text=json.dumps(head["state"]),
        )

        assert len(full["trace"]) == total
        assert head["trace"] == full["trace"][:cut]
        assert head["trace"] + tail["trace"] == full["trace"]
        # The restored simulator's *final* snapshot is byte-identical
        # to the uninterrupted one: clock, sequence cursor, event count
        # and every pending (time, seq, key) triple.
        assert canonical_json(tail["state"]) == canonical_json(full["state"])

    def test_snapshot_survives_json_round_trip(self):
        """What travels between processes is plain JSON; one in-process
        double-restore sanity check on top of the subprocess runs."""
        full = _drive(["full", 4, 50])
        text = json.dumps(full["state"])
        assert json.loads(text) == full["state"]


class TestSnapshotRefusals:
    def test_live_unkeyed_event_refuses(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)  # no key
        with pytest.raises(SnapshotError, match="unkeyed"):
            sim.to_state()

    def test_live_unkeyed_recurring_refuses(self):
        sim = Simulator()
        sim.every(2.0, lambda: None)  # no key
        with pytest.raises(SnapshotError, match="recurring"):
            sim.to_state()

    def test_restore_with_missing_callback_refuses(self):
        sim = Simulator()
        sim.at(5.0, lambda: None, key="known")
        state = sim.to_state()
        with pytest.raises(SnapshotError, match="known"):
            Simulator.from_state(state, callbacks={})

    def test_cancelled_tombstones_are_dropped(self):
        sim = Simulator()
        sim.at(5.0, lambda: None, key="live")
        sim.at(6.0, lambda: None, key="dead").cancel()
        state = sim.to_state()
        assert [event["key"] for event in state["events"]] == ["live"]

    def test_two_restores_are_identical(self):
        """Restore determinism: the same snapshot restored twice gives
        simulators whose own snapshots are byte-identical."""
        sim = Simulator()
        sim.at(1.0, lambda: None, key="a")
        sim.at(1.0, lambda: None, key="b")
        state = sim.to_state()
        callbacks = {"a": lambda: None, "b": lambda: None}
        first = Simulator.from_state(state, callbacks).to_state()
        second = Simulator.from_state(state, callbacks).to_state()
        assert canonical_json(first) == canonical_json(second)
