"""Snapshot round trips for the serving stack and the fleet: quiesce,
serialize through canonical JSON (what a checkpoint file does), restore
into a freshly built twin, and continue deterministically."""

from repro.cluster.fleet import EquinoxFleet
from repro.eval.runner import build_accelerator
from repro.exec.canonical import canonical_json, decode, encode
from repro.state import CheckpointStore


def _fresh_accelerator():
    return build_accelerator("500us", "hbfp8")


class TestAcceleratorSnapshot:
    def test_restore_determinism_after_quiesce(self):
        """Two restores of one snapshot continue identically — the
        invariant the crash-recovery drill's byte-compare rests on."""
        source = _fresh_accelerator()
        source.run(load=0.5, requests=48, seed=3)
        source.quiesce()
        state = decode(encode(source.to_state()))  # disk round trip

        first, second = _fresh_accelerator(), _fresh_accelerator()
        first.from_state(state)
        second.from_state(state)
        report_a = first.run(load=0.5, requests=32, seed=5)
        report_b = second.run(load=0.5, requests=32, seed=5)
        assert report_a.requests_completed == report_b.requests_completed
        assert report_a.p99_latency_us == report_b.p99_latency_us
        assert report_a.training_top_s == report_b.training_top_s
        first.quiesce()
        second.quiesce()
        assert canonical_json(first.to_state()) == canonical_json(
            second.to_state()
        )

    def test_snapshot_carries_the_clock_and_meters(self):
        source = _fresh_accelerator()
        source.run(load=0.4, requests=32, seed=1)
        source.quiesce()
        state = source.to_state()
        restored = _fresh_accelerator()
        restored.from_state(decode(encode(state)))
        assert restored.sim.now == source.sim.now
        assert restored.sim.events_processed == source.sim.events_processed
        assert canonical_json(restored.fault_counters.to_state()) == (
            canonical_json(source.fault_counters.to_state())
        )


class TestFleetSnapshot:
    def test_round_trip_preserves_the_round_checkpoint(self):
        fleet = EquinoxFleet(2, latency_class="500us")
        fleet.train([0.3, 0.5], batches=1, seed=11)
        state = decode(encode(fleet.to_state()))

        clone = EquinoxFleet(2, latency_class="500us")
        clone.from_state(state)
        assert clone.last_checkpoint == fleet.last_checkpoint
        # A resumed round reuses every restored measurement bit-for-bit
        # instead of re-simulating.
        report = clone.train(
            [0.3, 0.5], batches=1, seed=11,
            resume_from=clone.last_checkpoint,
        )
        assert tuple(report.workers) == fleet.last_checkpoint.reports
        assert clone.fault_counters.round_restores >= 1

    def test_store_backed_train_resumes_automatically(self, tmp_path):
        """A killed ``train`` re-run with the same CheckpointStore picks
        its partial round back up without being handed the checkpoint."""
        store = CheckpointStore(tmp_path)
        fleet = EquinoxFleet(2, latency_class="500us")
        fleet.train([0.3, 0.5], batches=1, seed=11, checkpoint_store=store)
        reports = fleet.last_checkpoint.reports

        survivor = EquinoxFleet(2, latency_class="500us")
        report = survivor.train(
            [0.3, 0.5], batches=1, seed=11, checkpoint_store=store
        )
        assert tuple(report.workers) == reports
        assert survivor.fault_counters.round_restores >= 1
