"""Synthesis proxy: Table 3 and the headline overheads."""

import pytest

from repro.dse.table1 import equinox_configuration
from repro.synth.report import encoding_overhead, synthesize


@pytest.fixture(scope="module")
def report():
    return synthesize(equinox_configuration("500us"))


class TestTable3:
    def test_all_components_present(self, report):
        names = {c.name for c in report.components}
        assert names == {
            "MMU", "DRAM Interface", "SIMD Unit", "Weight Buffer",
            "Activation Buffer", "Request Dispatcher",
            "Instruction Dispatcher", "Others",
        }

    def test_totals_near_paper(self, report):
        assert report.total_area_mm2 == pytest.approx(313.85, rel=0.05)
        assert report.total_power_w == pytest.approx(85.91, rel=0.10)

    def test_mmu_dominates(self, report):
        mmu = report.component("MMU")
        assert mmu.area_mm2 == pytest.approx(185.6, rel=0.10)
        assert mmu.power_w == pytest.approx(36.84, rel=0.10)

    def test_big_three_take_most_of_chip(self, report):
        """MMU + DRAM + buffers take ~95% area / ~82% power (paper §6)."""
        area_frac, power_frac = report.share(
            "MMU", "DRAM Interface", "Weight Buffer", "Activation Buffer",
        )
        assert area_frac > 0.88
        assert power_frac > 0.75

    def test_unknown_component_rejected(self, report):
        with pytest.raises(KeyError):
            report.component("NPU")


class TestOverheads:
    @pytest.fixture(scope="class")
    def overheads(self):
        return encoding_overhead(equinox_configuration("500us"))

    def test_controller_under_one_percent(self, overheads):
        assert overheads["controller_area_overhead"] < 0.01
        assert overheads["controller_power_overhead"] < 0.01

    def test_encoding_overhead_matches_paper(self, overheads):
        # Paper: 4% area, 13% power for the SIMD unit.
        assert overheads["encoding_area_overhead"] == pytest.approx(0.04, abs=0.015)
        assert overheads["encoding_power_overhead"] == pytest.approx(0.13, abs=0.03)

    def test_exponent_handling_is_small(self, overheads):
        assert 0 < overheads["mmu_exponent_area_overhead"] < 0.03
        assert 0 < overheads["mmu_exponent_power_overhead"] < 0.05


class TestScaling:
    def test_dispatcher_area_scales_with_batch_target(self):
        small = synthesize(equinox_configuration("min"))
        large = synthesize(equinox_configuration("none"))
        assert (
            large.component("Request Dispatcher").area_mm2
            > small.component("Request Dispatcher").area_mm2
        )

    def test_bfloat16_mmu_fewer_denser_alus(self):
        hbfp = synthesize(equinox_configuration("none"))
        bf16 = synthesize(equinox_configuration("none", "bfloat16"))
        # Similar MMU area envelopes, ~6x fewer ALUs for bfloat16.
        assert bf16.component("MMU").area_mm2 == pytest.approx(
            hbfp.component("MMU").area_mm2, rel=0.25
        )
