"""Figure 2 convergence claims at test scale."""

import pytest

from repro.train.convergence import convergence_experiment, perplexity_experiment


@pytest.fixture(scope="module")
def curves():
    return convergence_experiment(
        encodings=("fp32", "hbfp8"), epochs=6, samples=1000, hidden=64,
    )


class TestClassification:
    def test_both_encodings_learn(self, curves):
        for curve in curves.values():
            assert curve.final_error < curve.validation_error[0]

    def test_hbfp8_tracks_fp32(self, curves):
        """Figure 2a's claim: hbfp8 converges like fp32."""
        gap = abs(curves["hbfp8"].final_error - curves["fp32"].final_error)
        assert gap < 6.0  # percentage points, at this scale

    def test_curves_comparable_epoch_count(self, curves):
        assert curves["hbfp8"].epochs == curves["fp32"].epochs


class TestPerplexity:
    @pytest.fixture(scope="class")
    def lm_curves(self):
        return perplexity_experiment(
            encodings=("fp32", "hbfp8"), epochs=5, corpus_length=5000,
            hidden=64,
        )

    def test_both_beat_uniform(self, lm_curves):
        # Uniform perplexity over the 32-char vocab is 32.
        for curve in lm_curves.values():
            assert curve.final_perplexity < 16.0

    def test_hbfp8_tracks_fp32(self, lm_curves):
        """Figure 2b's claim, as a ratio of final perplexities."""
        ratio = (
            lm_curves["hbfp8"].final_perplexity
            / lm_curves["fp32"].final_perplexity
        )
        assert 0.8 < ratio < 1.25
