"""Synthetic datasets and the training loop."""

import numpy as np
import pytest

from repro.train.data import (
    batch_iterator,
    synthetic_char_corpus,
    synthetic_image_classes,
)
from repro.train.nn import Linear, ReLU, Sequential
from repro.train.optimizer import SGD
from repro.train.trainer import Trainer


class TestImageClasses:
    def test_shapes_and_labels(self):
        x, y = synthetic_image_classes(samples=100, classes=5, side=8)
        assert x.shape == (100, 64)
        assert set(np.unique(y)) <= set(range(5))

    def test_deterministic(self):
        a = synthetic_image_classes(samples=50, seed=3)
        b = synthetic_image_classes(samples=50, seed=3)
        np.testing.assert_array_equal(a[0], b[0])

    def test_learnable_above_chance(self):
        """A linear probe must beat chance: the classes carry signal."""
        x, y = synthetic_image_classes(samples=600, classes=4, noise=0.5, seed=1)
        model = Sequential(Linear(x.shape[1], 4, rng=np.random.default_rng(0)))
        trainer = Trainer(model, SGD(lr=0.05), batch=32)
        for epoch in range(5):
            trainer.train_epoch(x[:500], y[:500], epoch)
        error, _ = trainer.evaluate(x[500:], y[500:])
        assert error < 60.0  # chance is 75%

    def test_rejects_undersampled(self):
        with pytest.raises(ValueError):
            synthetic_image_classes(samples=3, classes=10)


class TestCharCorpus:
    def test_range_and_length(self):
        corpus = synthetic_char_corpus(length=500, vocab=16)
        assert corpus.shape == (500,)
        assert corpus.min() >= 0 and corpus.max() < 16

    def test_sparse_transitions(self):
        corpus = synthetic_char_corpus(length=5000, vocab=16, branching=3, seed=2)
        successors = {}
        for a, b in zip(corpus[:-1], corpus[1:]):
            successors.setdefault(int(a), set()).add(int(b))
        assert all(len(s) <= 3 for s in successors.values())

    def test_rejects_bad_branching(self):
        with pytest.raises(ValueError):
            synthetic_char_corpus(vocab=8, branching=9)


class TestBatchIterator:
    def test_covers_all_samples(self):
        x = np.arange(10).reshape(10, 1)
        y = np.arange(10)
        seen = []
        for bx, _ in batch_iterator(x, y, batch=3, seed=0):
            seen.extend(bx[:, 0].tolist())
        assert sorted(seen) == list(range(10))

    def test_pairs_stay_aligned(self):
        x = np.arange(20).reshape(20, 1).astype(np.float32)
        y = np.arange(20)
        for bx, by in batch_iterator(x, y, batch=7, seed=1):
            np.testing.assert_array_equal(bx[:, 0].astype(int), by)

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            list(batch_iterator(np.zeros((3, 1)), np.zeros(4), batch=2))


class TestTrainer:
    def test_fit_records_curve(self):
        x, y = synthetic_image_classes(samples=300, classes=3, seed=5)
        model = Sequential(
            Linear(x.shape[1], 32, rng=np.random.default_rng(1)),
            ReLU(),
            Linear(32, 3, rng=np.random.default_rng(2)),
        )
        trainer = Trainer(model, SGD(lr=0.05), batch=32, seed=5)
        curve = trainer.fit((x[:240], y[:240]), (x[240:], y[240:]),
                            epochs=3, encoding_label="fp32")
        assert curve.epochs == [1, 2, 3]
        assert len(curve.validation_error) == 3
        assert curve.final_error <= curve.validation_error[0] + 10

    def test_rejects_zero_epochs(self):
        x, y = synthetic_image_classes(samples=100, classes=2, seed=0)
        model = Sequential(Linear(x.shape[1], 2))
        with pytest.raises(ValueError):
            Trainer(model).fit((x, y), (x, y), epochs=0)

    def test_perplexity_helpers(self):
        from repro.train.trainer import TrainingCurve

        curve = TrainingCurve(encoding="fp32")
        curve.validation_loss = [np.log(10.0), np.log(5.0)]
        assert curve.final_perplexity == pytest.approx(5.0)
        assert curve.perplexities() == pytest.approx([10.0, 5.0])

    def test_empty_curve_raises(self):
        from repro.train.trainer import TrainingCurve

        with pytest.raises(ValueError):
            _ = TrainingCurve(encoding="fp32").final_error
