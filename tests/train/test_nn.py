"""Neural-network layers: numerical gradients, encoding plumbing."""

import numpy as np
import pytest

from repro.train.nn import Linear, ReLU, Sequential, Tanh, softmax_cross_entropy


def _numeric_grad(f, x, eps=1e-3):  # eps sized for float32 forward math
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = f()
        x[idx] = orig - eps
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(8, 4)
        assert layer(np.zeros((3, 8), dtype=np.float32)).shape == (3, 4)

    def test_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        layer = Linear(5, 3, rng=rng)
        x = rng.standard_normal((4, 5)).astype(np.float32)
        target = rng.standard_normal((4, 3)).astype(np.float32)

        def loss():
            out = layer(x)
            return 0.5 * float(((out - target) ** 2).sum())

        out = layer(x)
        layer.backward(out - target)
        numeric = _numeric_grad(loss, layer.weight)
        np.testing.assert_allclose(layer.grad_weight, numeric, atol=1e-2)

    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        layer = Linear(5, 3, rng=rng)
        x = rng.standard_normal((2, 5)).astype(np.float32)
        target = rng.standard_normal((2, 3)).astype(np.float32)

        def loss():
            return 0.5 * float(((layer(x) - target) ** 2).sum())

        out = layer(x)
        grad_in = layer.backward(out - target)
        numeric = _numeric_grad(loss, x)
        np.testing.assert_allclose(grad_in, numeric, atol=1e-2)

    def test_backward_before_forward_rejected(self):
        with pytest.raises(RuntimeError):
            Linear(4, 2).backward(np.zeros((1, 2)))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 4)

    def test_hbfp8_encoding_rounds_output(self):
        from repro.arith.bfloat16 import to_bfloat16

        layer = Linear(16, 8, encoding="hbfp8", rng=np.random.default_rng(2))
        out = layer(np.random.default_rng(3).standard_normal((4, 16)))
        np.testing.assert_array_equal(out, to_bfloat16(out))

    def test_quantized_close_to_fp32(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((8, 16)).astype(np.float32)
        exact = Linear(16, 8, encoding="fp32", rng=np.random.default_rng(5))
        quant = Linear(16, 8, encoding="hbfp8", rng=np.random.default_rng(5))
        delta = np.abs(exact(x) - quant(x)).max()
        assert delta < 0.1 * np.abs(exact(x)).max() + 1e-3


class TestActivations:
    def test_relu_forward_backward(self):
        relu = ReLU()
        x = np.array([[-1.0, 2.0, 0.0]], dtype=np.float32)
        out = relu(x)
        np.testing.assert_array_equal(out, [[0.0, 2.0, 0.0]])
        grad = relu.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, [[0.0, 1.0, 0.0]])

    def test_tanh_gradient(self):
        tanh = Tanh()
        x = np.array([[0.3, -0.7]], dtype=np.float32)
        out = tanh(x)
        grad = tanh.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, 1 - out**2, rtol=1e-6)

    def test_backward_before_forward_rejected(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros((1, 2)))


class TestSequential:
    def test_chains_forward_and_backward(self):
        rng = np.random.default_rng(6)
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        x = rng.standard_normal((3, 4)).astype(np.float32)
        out = model(x)
        assert out.shape == (3, 2)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert len(model.parameters()) == 4
        assert len(model.gradients()) == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Sequential()


class TestSoftmaxCrossEntropy:
    def test_loss_of_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_logits_loss(self):
        logits = np.zeros((4, 10))
        loss, _ = softmax_cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10))

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(7)
        logits = rng.standard_normal((3, 5))
        labels = np.array([1, 4, 0])
        _, grad = softmax_cross_entropy(logits.copy(), labels)

        def loss():
            value, _ = softmax_cross_entropy(logits, labels)
            return value

        numeric = _numeric_grad(loss, logits)
        np.testing.assert_allclose(grad, numeric, atol=1e-4)

    def test_gradient_rows_sum_to_zero(self):
        rng = np.random.default_rng(8)
        _, grad = softmax_cross_entropy(
            rng.standard_normal((6, 4)), np.array([0, 1, 2, 3, 0, 1])
        )
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-6)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.zeros(3, dtype=int))
