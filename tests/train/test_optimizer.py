"""SGD optimizer."""

import numpy as np
import pytest

from repro.train.optimizer import SGD


class TestSGD:
    def test_plain_step(self):
        opt = SGD(lr=0.1, momentum=0.0)
        param = np.array([1.0, 2.0], dtype=np.float32)
        opt.step([param], [np.array([1.0, -1.0], dtype=np.float32)])
        np.testing.assert_allclose(param, [0.9, 2.1])

    def test_momentum_accumulates(self):
        opt = SGD(lr=0.1, momentum=0.5)
        param = np.zeros(1, dtype=np.float32)
        grad = np.ones(1, dtype=np.float32)
        opt.step([param], [grad])
        assert param[0] == pytest.approx(-0.1)
        opt.step([param], [grad])
        # velocity = 0.5·(-0.1) - 0.1 = -0.15.
        assert param[0] == pytest.approx(-0.25)

    def test_weight_decay(self):
        opt = SGD(lr=0.1, momentum=0.0, weight_decay=0.1)
        param = np.array([10.0], dtype=np.float32)
        opt.step([param], [np.zeros(1, dtype=np.float32)])
        assert param[0] == pytest.approx(10.0 - 0.1 * 0.1 * 10.0)

    def test_in_place_update(self):
        opt = SGD(lr=0.1, momentum=0.0)
        param = np.zeros(2, dtype=np.float32)
        alias = param
        opt.step([param], [np.ones(2, dtype=np.float32)])
        assert alias is param
        assert alias[0] != 0.0

    def test_minimizes_quadratic(self):
        opt = SGD(lr=0.1, momentum=0.9)
        param = np.array([5.0], dtype=np.float32)
        for _ in range(200):
            opt.step([param], [2 * param])
        assert abs(param[0]) < 1e-3

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)
        with pytest.raises(ValueError):
            SGD(weight_decay=-0.1)

    def test_mismatched_lists_rejected(self):
        opt = SGD()
        with pytest.raises(ValueError):
            opt.step([np.zeros(1)], [])

    def test_set_lr(self):
        opt = SGD(lr=0.1)
        opt.set_lr(0.01)
        assert opt.lr == 0.01
        with pytest.raises(ValueError):
            opt.set_lr(0.0)
