"""Arrival processes."""

import numpy as np
import pytest

from repro.workload.loadgen import PoissonArrivals, TraceArrivals, UniformArrivals


class TestPoisson:
    def test_mean_gap_matches_rate(self):
        arrivals = PoissonArrivals(rate_per_cycle=0.01, seed=1)
        gaps = [arrivals.next_gap() for _ in range(20000)]
        assert np.mean(gaps) == pytest.approx(100.0, rel=0.05)

    def test_exponential_shape(self):
        arrivals = PoissonArrivals(rate_per_cycle=0.01, seed=2)
        gaps = np.array([arrivals.next_gap() for _ in range(20000)])
        # Memoryless: std ≈ mean for an exponential.
        assert np.std(gaps) == pytest.approx(np.mean(gaps), rel=0.1)

    def test_deterministic_per_seed(self):
        a = PoissonArrivals(0.01, seed=7)
        b = PoissonArrivals(0.01, seed=7)
        assert [a.next_gap() for _ in range(10)] == [
            b.next_gap() for _ in range(10)
        ]

    def test_seeds_differ(self):
        a = PoissonArrivals(0.01, seed=1).next_gap()
        b = PoissonArrivals(0.01, seed=2).next_gap()
        assert a != b

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestUniform:
    def test_constant_gap(self):
        arrivals = UniformArrivals(gap_cycles=50.0)
        assert [arrivals.next_gap() for _ in range(3)] == [50.0] * 3

    def test_rejects_bad_gap(self):
        with pytest.raises(ValueError):
            UniformArrivals(0.0)


class TestTrace:
    def test_replays_and_cycles(self):
        arrivals = TraceArrivals([1.0, 2.0, 3.0])
        gaps = [arrivals.next_gap() for _ in range(7)]
        assert gaps == [1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TraceArrivals([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TraceArrivals([1.0, -2.0])
