"""Arrival processes."""

import numpy as np
import pytest

from repro.workload.loadgen import (
    FaultyArrivals,
    MixedArrivals,
    PoissonArrivals,
    TraceArrivals,
    UniformArrivals,
)


class TestPoisson:
    def test_mean_gap_matches_rate(self):
        arrivals = PoissonArrivals(rate_per_cycle=0.01, seed=1)
        gaps = [arrivals.next_gap() for _ in range(20000)]
        assert np.mean(gaps) == pytest.approx(100.0, rel=0.05)

    def test_exponential_shape(self):
        arrivals = PoissonArrivals(rate_per_cycle=0.01, seed=2)
        gaps = np.array([arrivals.next_gap() for _ in range(20000)])
        # Memoryless: std ≈ mean for an exponential.
        assert np.std(gaps) == pytest.approx(np.mean(gaps), rel=0.1)

    def test_deterministic_per_seed(self):
        a = PoissonArrivals(0.01, seed=7)
        b = PoissonArrivals(0.01, seed=7)
        assert [a.next_gap() for _ in range(10)] == [
            b.next_gap() for _ in range(10)
        ]

    def test_seeds_differ(self):
        a = PoissonArrivals(0.01, seed=1).next_gap()
        b = PoissonArrivals(0.01, seed=2).next_gap()
        assert a != b

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestNextGapsStreamEquality:
    """``next_gaps(n)`` must consume the RNG exactly like n scalar
    draws — the batched admission path in ``core.equinox`` relies on it
    for bit-identical arrival times."""

    def test_poisson_vectorized_equals_scalar(self):
        scalar = PoissonArrivals(0.02, seed=13)
        batched = PoissonArrivals(0.02, seed=13)
        expected = [scalar.next_gap() for _ in range(37)]
        got = batched.next_gaps(37)
        assert got == expected

    def test_poisson_final_rng_state_identical(self):
        scalar = PoissonArrivals(0.02, seed=14)
        batched = PoissonArrivals(0.02, seed=14)
        for _ in range(25):
            scalar.next_gap()
        batched.next_gaps(25)
        assert scalar.to_state() == batched.to_state()
        # and the streams stay merged afterwards
        assert scalar.next_gap() == batched.next_gap()

    def test_mixed_blocks_equal_one_stream(self):
        scalar = PoissonArrivals(0.02, seed=15)
        batched = PoissonArrivals(0.02, seed=15)
        expected = [scalar.next_gap() for _ in range(10)]
        got = batched.next_gaps(3) + [batched.next_gap()] + batched.next_gaps(6)
        assert got == expected

    def test_zero_draws_is_a_no_op(self):
        arrivals = PoissonArrivals(0.02, seed=16)
        state = arrivals.to_state()
        assert arrivals.next_gaps(0) == []
        assert arrivals.to_state() == state

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.02, seed=17).next_gaps(-1)

    def test_uniform_fallback_loop(self):
        arrivals = UniformArrivals(gap_cycles=50.0)
        assert arrivals.next_gaps(4) == [50.0] * 4

    def test_faulty_arrivals_keeps_scalar_fallback(self):
        """FaultyArrivals draws a data-dependent amount of randomness
        per gap, so it must inherit the generic scalar loop — the
        vectorized one-shot draw would desynchronize its streams."""
        from repro.faults.counters import FaultCounters
        from repro.faults.plan import FaultPlan, RequestFaultSpec

        def build():
            plan = FaultPlan(
                seed=5,
                requests=RequestFaultSpec(
                    drop_rate=0.3, delay_rate=0.2, delay_cycles=10.0
                ),
            )
            return FaultyArrivals(
                PoissonArrivals(0.02, seed=18), plan, FaultCounters()
            )

        scalar = build()
        batched = build()
        expected = [scalar.next_gap() for _ in range(20)]
        assert batched.next_gaps(20) == expected
        assert batched.counters.requests_dropped == scalar.counters.requests_dropped


class TestUniform:
    def test_constant_gap(self):
        arrivals = UniformArrivals(gap_cycles=50.0)
        assert [arrivals.next_gap() for _ in range(3)] == [50.0] * 3

    def test_rejects_bad_gap(self):
        with pytest.raises(ValueError):
            UniformArrivals(0.0)


class TestMixedArrivals:
    @staticmethod
    def _absolute(stream, count):
        clock, times = 0.0, []
        for _ in range(count):
            clock += stream.next_gap()
            times.append(clock)
        return times

    def test_merge_is_the_sorted_union(self):
        """The compositor emits exactly the union of its component
        streams' arrival times, in order — each component consumes its
        RNG exactly as it would alone."""
        mixed = MixedArrivals([
            PoissonArrivals(0.02, seed=[9, 0]),
            PoissonArrivals(0.05, seed=[9, 1]),
        ])
        expected = sorted(
            self._absolute(PoissonArrivals(0.02, seed=[9, 0]), 120)
            + self._absolute(PoissonArrivals(0.05, seed=[9, 1]), 120)
        )[:80]
        assert self._absolute(mixed, 80) == pytest.approx(
            expected, rel=1e-12
        )

    def test_tags_and_ties_are_deterministic(self):
        """Uniform 30/50-cycle streams collide at 150; the tie breaks
        to the lower stream index."""
        mixed = MixedArrivals([UniformArrivals(30.0), UniformArrivals(50.0)])
        drawn = [mixed.next_tagged() for _ in range(8)]
        assert drawn == [
            (30.0, 0), (20.0, 1), (10.0, 0), (30.0, 0),
            (10.0, 1), (20.0, 0), (30.0, 0), (0.0, 1),
        ]
        assert mixed.last_source == 1

    def test_identical_seeds_merge_identically(self):
        def build():
            return MixedArrivals([
                PoissonArrivals(0.02, seed=[4, 0]),
                PoissonArrivals(0.03, seed=[4, 1]),
            ])

        a, b = build(), build()
        assert [a.next_tagged() for _ in range(60)] == [
            b.next_tagged() for _ in range(60)
        ]

    def test_snapshot_round_trip_mid_stream(self):
        def build():
            return MixedArrivals(
                [
                    PoissonArrivals(0.02, seed=[6, 0]),
                    PoissonArrivals(0.05, seed=[6, 1]),
                ],
                block=8,
            )

        original = build()
        for _ in range(10):
            original.next_tagged()
        restored = build()
        restored.from_state(original.to_state())
        assert restored.last_source == original.last_source
        # Continues bit-exactly, including block-buffered arrivals that
        # were drawn but not yet emitted.
        assert [original.next_tagged() for _ in range(30)] == [
            restored.next_tagged() for _ in range(30)
        ]

    def test_snapshot_rejects_stream_count_mismatch(self):
        one = MixedArrivals([UniformArrivals(10.0)])
        two = MixedArrivals([UniformArrivals(10.0), UniformArrivals(20.0)])
        with pytest.raises(ValueError, match="component stream"):
            one.from_state(two.to_state())

    def test_next_gap_tracks_last_source(self):
        mixed = MixedArrivals([UniformArrivals(30.0), UniformArrivals(50.0)])
        assert mixed.last_source is None
        assert mixed.next_gap() == 30.0
        assert mixed.last_source == 0

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            MixedArrivals([])
        with pytest.raises(ValueError):
            MixedArrivals([UniformArrivals(10.0)], block=0)


class TestTrace:
    def test_replays_and_cycles(self):
        arrivals = TraceArrivals([1.0, 2.0, 3.0])
        gaps = [arrivals.next_gap() for _ in range(7)]
        assert gaps == [1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TraceArrivals([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TraceArrivals([1.0, -2.0])
