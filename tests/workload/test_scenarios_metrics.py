"""Load profiles and SLO helpers."""

import pytest

from repro.workload.metrics import latency_target_cycles, offered_rate
from repro.workload.scenarios import diurnal_load_profile, spike_load_profile


class TestDiurnal:
    def test_bounds(self):
        profile = diurnal_load_profile(points=24, low=0.1, high=0.7)
        assert min(profile) == pytest.approx(0.1, abs=0.02)
        assert max(profile) == pytest.approx(0.7, abs=0.02)

    def test_peak_location(self):
        profile = diurnal_load_profile(points=24, peak_hour=14.0)
        assert profile.index(max(profile)) == 14

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            diurnal_load_profile(low=0.8, high=0.2)

    def test_average_load_is_moderate(self):
        """The profile reproduces the ~30-40% average utilization the
        paper motivates with."""
        profile = diurnal_load_profile(points=48, low=0.1, high=0.7)
        assert 0.3 <= sum(profile) / len(profile) <= 0.5


class TestSpike:
    def test_spike_window(self):
        profile = spike_load_profile(points=10, base=0.3, spike=0.9,
                                     spike_start=4, spike_len=2)
        assert profile[3] == 0.3
        assert profile[4] == profile[5] == 0.9
        assert profile[6] == 0.3

    def test_rejects_overflowing_spike(self):
        with pytest.raises(ValueError):
            spike_load_profile(points=10, spike_start=8, spike_len=5)


class TestMetrics:
    def test_latency_target_default_multiple(self):
        assert latency_target_cycles(100.0) == 1000.0

    def test_offered_rate(self):
        assert offered_rate(0.5, 0.001) == pytest.approx(0.0005)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            latency_target_cycles(0.0)
        with pytest.raises(ValueError):
            offered_rate(0.0, 1.0)
        with pytest.raises(ValueError):
            offered_rate(0.5, 0.0)
